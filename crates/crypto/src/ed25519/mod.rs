//! Ed25519 digital signatures (RFC 8032), built from scratch.
//!
//! Spire authenticates every protocol message between SCADA-master replicas,
//! proxies and HMIs with digital signatures; the original system used RSA via
//! OpenSSL, which this reproduction replaces with Ed25519 (see DESIGN.md).
//!
//! # Security note
//!
//! The implementation is *functionally* correct (validated against RFC 8032
//! test vectors) but is **not constant time** — acceptable for a research
//! simulator, unacceptable for protecting real long-term keys.
//!
//! # Examples
//!
//! ```
//! use spire_crypto::ed25519::SigningKey;
//! let key = SigningKey::from_seed(&[7u8; 32]);
//! let sig = key.sign(b"breaker 14 open");
//! assert!(key.verifying_key().verify(b"breaker 14 open", &sig));
//! ```

mod field;
mod point;
mod scalar;

pub use point::Point;
pub use scalar::Scalar;

use crate::sha2::Sha512;
use point::base_point;

/// A 64-byte Ed25519 signature.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct Signature(pub [u8; 64]);

impl std::fmt::Debug for Signature {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Signature({}...)", crate::sha2::to_hex(&self.0[..8]))
    }
}

impl Signature {
    /// Builds a signature from raw bytes (no validation; verification
    /// happens in [`VerifyingKey::verify`]).
    pub fn from_bytes(bytes: [u8; 64]) -> Signature {
        Signature(bytes)
    }

    /// Returns the raw 64 bytes.
    pub fn to_bytes(&self) -> [u8; 64] {
        self.0
    }
}

/// An Ed25519 private signing key, derived from a 32-byte seed.
#[derive(Clone)]
pub struct SigningKey {
    /// Clamped and reduced secret scalar.
    scalar: Scalar,
    /// The second half of SHA-512(seed), used to derive nonces.
    prefix: [u8; 32],
    /// Cached public key.
    verifying: VerifyingKey,
}

impl std::fmt::Debug for SigningKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SigningKey(pub={:?})", self.verifying)
    }
}

impl SigningKey {
    /// Derives a signing key from a 32-byte seed per RFC 8032 §5.1.5.
    pub fn from_seed(seed: &[u8; 32]) -> SigningKey {
        let h = Sha512::digest(seed);
        let mut scalar_bytes = [0u8; 32];
        scalar_bytes.copy_from_slice(&h[..32]);
        scalar_bytes[0] &= 248;
        scalar_bytes[31] &= 127;
        scalar_bytes[31] |= 64;
        // Reducing the clamped value mod l is equivalent for all uses since
        // the base point has order l.
        let scalar = Scalar::from_bytes_mod_order(&scalar_bytes);
        let mut prefix = [0u8; 32];
        prefix.copy_from_slice(&h[32..]);
        let public = base_point().mul_scalar(&scalar).compress();
        SigningKey {
            scalar,
            prefix,
            verifying: VerifyingKey(public),
        }
    }

    /// Returns the corresponding public key.
    pub fn verifying_key(&self) -> VerifyingKey {
        self.verifying
    }

    /// Signs a message.
    pub fn sign(&self, message: &[u8]) -> Signature {
        let mut h = Sha512::new();
        h.update(&self.prefix);
        h.update(message);
        let r = Scalar::from_wide_bytes(&h.finalize());
        let r_point = base_point().mul_scalar(&r).compress();

        let mut h = Sha512::new();
        h.update(&r_point);
        h.update(&self.verifying.0);
        h.update(message);
        let k = Scalar::from_wide_bytes(&h.finalize());

        let s = r.add(k.mul(self.scalar));
        let mut sig = [0u8; 64];
        sig[..32].copy_from_slice(&r_point);
        sig[32..].copy_from_slice(&s.to_bytes());
        Signature(sig)
    }
}

/// An Ed25519 public verification key (32-byte compressed point).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VerifyingKey(pub [u8; 32]);

impl std::fmt::Debug for VerifyingKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "VerifyingKey({}...)", crate::sha2::to_hex(&self.0[..6]))
    }
}

impl VerifyingKey {
    /// Builds a verifying key from its 32-byte encoding (validated lazily
    /// during verification).
    pub fn from_bytes(bytes: [u8; 32]) -> VerifyingKey {
        VerifyingKey(bytes)
    }

    /// Returns the raw 32-byte encoding.
    pub fn to_bytes(&self) -> [u8; 32] {
        self.0
    }

    /// Verifies `signature` over `message`.
    ///
    /// Rejects: malformed points, non-canonical `S` (malleability), and of
    /// course mismatched signatures.
    pub fn verify(&self, message: &[u8], signature: &Signature) -> bool {
        let sig = &signature.0;
        let mut r_bytes = [0u8; 32];
        r_bytes.copy_from_slice(&sig[..32]);
        let mut s_bytes = [0u8; 32];
        s_bytes.copy_from_slice(&sig[32..]);

        let Some(s) = Scalar::from_canonical_bytes(&s_bytes) else {
            return false;
        };
        let Some(a) = Point::decompress(&self.0) else {
            return false;
        };
        let Some(r) = Point::decompress(&r_bytes) else {
            return false;
        };

        let mut h = Sha512::new();
        h.update(&r_bytes);
        h.update(&self.0);
        h.update(message);
        let k = Scalar::from_wide_bytes(&h.finalize());

        // Check [8][S]B == [8]R + [8][k]A (cofactored verification).
        let lhs = base_point().mul_scalar(&s).mul_by_cofactor();
        let rhs = r.add(&a.mul_scalar(&k)).mul_by_cofactor();
        lhs == rhs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sha2::from_hex;

    #[test]
    fn rfc8032_test_vector_1() {
        // RFC 8032 §7.1 TEST 1: empty message.
        let seed: [u8; 32] =
            from_hex("9d61b19deffd5a60ba844af492ec2cc44449c5697b326919703bac031cae7f60")
                .try_into()
                .unwrap();
        let key = SigningKey::from_seed(&seed);
        assert_eq!(
            key.verifying_key().to_bytes().to_vec(),
            from_hex("d75a980182b10ab7d54bfed3c964073a0ee172f3daa62325af021a68f707511a")
        );
        let sig = key.sign(b"");
        assert_eq!(
            sig.to_bytes().to_vec(),
            from_hex(
                "e5564300c360ac729086e2cc806e828a84877f1eb8e5d974d873e06522490155\
                 5fb8821590a33bacc61e39701cf9b46bd25bf5f0595bbe24655141438e7a100b"
            )
        );
        assert!(key.verifying_key().verify(b"", &sig));
    }

    #[test]
    fn sign_verify_roundtrip() {
        let key = SigningKey::from_seed(&[42u8; 32]);
        let msg = b"supervisory control: open breaker 7";
        let sig = key.sign(msg);
        assert!(key.verifying_key().verify(msg, &sig));
    }

    #[test]
    fn verify_rejects_wrong_message() {
        let key = SigningKey::from_seed(&[42u8; 32]);
        let sig = key.sign(b"message a");
        assert!(!key.verifying_key().verify(b"message b", &sig));
    }

    #[test]
    fn verify_rejects_wrong_key() {
        let key1 = SigningKey::from_seed(&[1u8; 32]);
        let key2 = SigningKey::from_seed(&[2u8; 32]);
        let sig = key1.sign(b"msg");
        assert!(!key2.verifying_key().verify(b"msg", &sig));
    }

    #[test]
    fn verify_rejects_bitflips() {
        let key = SigningKey::from_seed(&[9u8; 32]);
        let msg = b"rtu 3 status update";
        let sig = key.sign(msg);
        for byte in [0usize, 31, 32, 63] {
            let mut bad = sig.to_bytes();
            bad[byte] ^= 0x01;
            assert!(
                !key.verifying_key().verify(msg, &Signature::from_bytes(bad)),
                "bit flip at byte {byte} accepted"
            );
        }
    }

    #[test]
    fn verify_rejects_noncanonical_s() {
        use super::scalar::group_order;
        let key = SigningKey::from_seed(&[5u8; 32]);
        let sig = key.sign(b"m");
        // Add l to S: produces the same point equation but a non-canonical
        // encoding, which must be rejected.
        let mut bytes = sig.to_bytes();
        let mut s_words = [0u64; 4];
        for i in 0..4 {
            let mut w = [0u8; 8];
            w.copy_from_slice(&bytes[32 + i * 8..32 + i * 8 + 8]);
            s_words[i] = u64::from_le_bytes(w);
        }
        let l = group_order();
        let mut carry = 0u128;
        for i in 0..4 {
            let v = s_words[i] as u128 + l[i] as u128 + carry;
            s_words[i] = v as u64;
            carry = v >> 64;
        }
        // S + l < 2^256 (l < 2^253, S < l), so no carry out.
        assert_eq!(carry, 0);
        for i in 0..4 {
            bytes[32 + i * 8..32 + i * 8 + 8].copy_from_slice(&s_words[i].to_le_bytes());
        }
        assert!(!key
            .verifying_key()
            .verify(b"m", &Signature::from_bytes(bytes)));
    }

    #[test]
    fn distinct_messages_distinct_signatures() {
        let key = SigningKey::from_seed(&[3u8; 32]);
        assert_ne!(key.sign(b"a").to_bytes(), key.sign(b"b").to_bytes());
        // Deterministic: same message, same signature.
        assert_eq!(key.sign(b"a").to_bytes(), key.sign(b"a").to_bytes());
    }
}
