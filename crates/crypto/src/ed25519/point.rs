//! Edwards-curve point arithmetic for edwards25519 (RFC 8032 §5.1).
//!
//! Points use extended homogeneous coordinates `(X : Y : Z : T)` with
//! `x = X/Z`, `y = Y/Z`, `x*y = T/Z`. The unified addition formula is
//! complete on this curve, so doubling is just `add(p, p)`.

use super::field::{sqrt, Fe};
use super::scalar::Scalar;
use std::sync::OnceLock;

/// A point on edwards25519 in extended coordinates.
#[derive(Clone, Copy, Debug)]
pub struct Point {
    x: Fe,
    y: Fe,
    z: Fe,
    t: Fe,
}

/// The curve constant `d = -121665/121666 mod p`.
pub fn curve_d() -> Fe {
    static CELL: OnceLock<Fe> = OnceLock::new();
    *CELL.get_or_init(|| {
        Fe::from_u64(121665)
            .neg()
            .mul(Fe::from_u64(121666).invert())
    })
}

fn curve_2d() -> Fe {
    static CELL: OnceLock<Fe> = OnceLock::new();
    *CELL.get_or_init(|| curve_d().add(curve_d()))
}

/// The standard base point `B` with `y = 4/5` and even `x`.
pub fn base_point() -> Point {
    static CELL: OnceLock<Point> = OnceLock::new();
    *CELL.get_or_init(|| {
        let y = Fe::from_u64(4).mul(Fe::from_u64(5).invert());
        let x = recover_x(y, false).expect("base point x must exist");
        Point::from_affine(x, y)
    })
}

/// Recovers the x coordinate from y and the sign bit, if the point exists.
fn recover_x(y: Fe, x_is_odd: bool) -> Option<Fe> {
    // x^2 = (y^2 - 1) / (d*y^2 + 1)
    let yy = y.square();
    let u = yy.sub(Fe::ONE);
    let v = curve_d().mul(yy).add(Fe::ONE);
    let xx = u.mul(v.invert());
    let mut x = sqrt(xx)?;
    if x.is_zero() && x_is_odd {
        return None; // sign bit set on x = 0 is invalid
    }
    if x.is_odd() != x_is_odd {
        x = x.neg();
    }
    Some(x)
}

impl Point {
    /// The identity element (0, 1).
    pub fn identity() -> Point {
        Point {
            x: Fe::ZERO,
            y: Fe::ONE,
            z: Fe::ONE,
            t: Fe::ZERO,
        }
    }

    /// Builds a point from affine coordinates (assumed on the curve).
    pub fn from_affine(x: Fe, y: Fe) -> Point {
        Point {
            x,
            y,
            z: Fe::ONE,
            t: x.mul(y),
        }
    }

    /// Unified point addition (complete for edwards25519).
    pub fn add(&self, other: &Point) -> Point {
        let a = self.y.sub(self.x).mul(other.y.sub(other.x));
        let b = self.y.add(self.x).mul(other.y.add(other.x));
        let c = self.t.mul(curve_2d()).mul(other.t);
        let d = self.z.add(self.z).mul(other.z);
        let e = b.sub(a);
        let f = d.sub(c);
        let g = d.add(c);
        let h = b.add(a);
        Point {
            x: e.mul(f),
            y: g.mul(h),
            t: e.mul(h),
            z: f.mul(g),
        }
    }

    /// Point doubling.
    pub fn double(&self) -> Point {
        self.add(self)
    }

    /// Point negation.
    pub fn neg(&self) -> Point {
        Point {
            x: self.x.neg(),
            y: self.y,
            z: self.z,
            t: self.t.neg(),
        }
    }

    /// Scalar multiplication by double-and-add (not constant time; see the
    /// crate-level note on side channels).
    pub fn mul_scalar(&self, scalar: &Scalar) -> Point {
        let mut result = Point::identity();
        let mut acc = *self;
        for bit in scalar.bits_le() {
            if bit {
                result = result.add(&acc);
            }
            acc = acc.double();
        }
        result
    }

    /// Computes `a*self + b*B` (the verification combination).
    pub fn double_scalar_mul_base(a: &Scalar, point: &Point, b: &Scalar) -> Point {
        point.mul_scalar(a).add(&base_point().mul_scalar(b))
    }

    /// Compresses to the 32-byte RFC 8032 encoding.
    pub fn compress(&self) -> [u8; 32] {
        let z_inv = self.z.invert();
        let x = self.x.mul(z_inv);
        let y = self.y.mul(z_inv);
        let mut bytes = y.to_bytes();
        if x.is_odd() {
            bytes[31] |= 0x80;
        }
        bytes
    }

    /// Decompresses an encoded point, validating it lies on the curve.
    pub fn decompress(bytes: &[u8; 32]) -> Option<Point> {
        let x_is_odd = bytes[31] & 0x80 != 0;
        let y = Fe::from_bytes(bytes);
        // Reject non-canonical y encodings (y >= p): round-trip check.
        let mut canonical = y.to_bytes();
        canonical[31] |= (x_is_odd as u8) << 7;
        if &canonical != bytes {
            return None;
        }
        let x = recover_x(y, x_is_odd)?;
        Some(Point::from_affine(x, y))
    }

    /// True if this is the identity element.
    pub fn is_identity(&self) -> bool {
        // x == 0 and y == z
        self.x.is_zero() && self.y == self.z
    }

    /// Multiplies by the cofactor 8.
    pub fn mul_by_cofactor(&self) -> Point {
        self.double().double().double()
    }
}

impl PartialEq for Point {
    fn eq(&self, other: &Self) -> bool {
        // (X1/Z1 == X2/Z2) and (Y1/Z1 == Y2/Z2), cross-multiplied.
        self.x.mul(other.z) == other.x.mul(self.z) && self.y.mul(other.z) == other.y.mul(self.z)
    }
}

impl Eq for Point {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_point_on_curve() {
        // -x^2 + y^2 = 1 + d*x^2*y^2
        let b = base_point();
        let x2 = b.x.square();
        let y2 = b.y.square();
        let lhs = y2.sub(x2);
        let rhs = Fe::ONE.add(curve_d().mul(x2).mul(y2));
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn base_point_encoding_is_canonical() {
        // The standard encoding of B is 0x58666666...66 (y = 4/5).
        let enc = base_point().compress();
        assert_eq!(enc[0], 0x58);
        assert!(enc[1..31].iter().all(|&b| b == 0x66));
        assert_eq!(enc[31], 0x66);
    }

    #[test]
    fn add_identity() {
        let b = base_point();
        assert_eq!(b.add(&Point::identity()), b);
        assert_eq!(Point::identity().add(&b), b);
    }

    #[test]
    fn add_inverse_gives_identity() {
        let b = base_point();
        assert!(b.add(&b.neg()).is_identity());
    }

    #[test]
    fn double_matches_add() {
        let b = base_point();
        assert_eq!(b.double(), b.add(&b));
    }

    #[test]
    fn scalar_mul_small() {
        let b = base_point();
        let three = Scalar([3, 0, 0, 0]);
        assert_eq!(b.mul_scalar(&three), b.add(&b).add(&b));
        assert_eq!(b.mul_scalar(&Scalar::ZERO), Point::identity());
        assert_eq!(b.mul_scalar(&Scalar::ONE), b);
    }

    #[test]
    fn order_of_base_point() {
        // l * B == identity.
        let l_minus_1 = {
            // l - 1 via scalar: 0 - 1 mod l
            let zero = Scalar::ZERO;
            let one = Scalar::ONE;
            // additive inverse: l - 1 = 0 + (l-1); compute as mul by (l-1)?
            // Easier: (l-1)*B = -B, so l*B = identity.
            let mut words = *super::super::scalar::group_order();
            // (path: crate::ed25519::scalar)
            words[0] -= 1;
            let _ = (zero, one);
            Scalar(words)
        };
        let b = base_point();
        assert_eq!(b.mul_scalar(&l_minus_1), b.neg());
        assert!(b.mul_scalar(&l_minus_1).add(&b).is_identity());
    }

    #[test]
    fn compress_decompress_roundtrip() {
        let p = base_point().mul_scalar(&Scalar([123456789, 42, 0, 0]));
        let enc = p.compress();
        let q = Point::decompress(&enc).expect("valid encoding");
        assert_eq!(p, q);
        assert_eq!(q.compress(), enc);
    }

    #[test]
    fn decompress_rejects_invalid() {
        // A y with no corresponding x: search a few candidates.
        let mut found_invalid = false;
        for candidate in 2u8..50 {
            let mut bytes = [0u8; 32];
            bytes[0] = candidate;
            if Point::decompress(&bytes).is_none() {
                found_invalid = true;
                break;
            }
        }
        assert!(found_invalid, "expected at least one invalid encoding");
    }

    #[test]
    fn decompress_rejects_noncanonical() {
        // p + 1 encodes y = 1 non-canonically.
        let mut bytes = [0xffu8; 32];
        bytes[0] = 0xee; // p + 1 = 2^255 - 18
        bytes[31] = 0x7f;
        assert!(Point::decompress(&bytes).is_none());
    }

    #[test]
    fn scalar_mul_distributes() {
        let b = base_point();
        let a = Scalar([5, 0, 0, 0]);
        let c = Scalar([7, 0, 0, 0]);
        let sum = a.add(c);
        assert_eq!(b.mul_scalar(&sum), b.mul_scalar(&a).add(&b.mul_scalar(&c)));
    }
}
