//! Arithmetic modulo the Ed25519 group order
//! `l = 2^252 + 27742317777372353535851937790883648493`.
//!
//! The constant is constructed from its decimal expansion at first use
//! rather than transcribed in hex, and the wide reduction uses a simple
//! shift-subtract long division, prioritising obviousness over speed.

use std::sync::OnceLock;

/// A scalar modulo the group order, in four little-endian 64-bit words.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Scalar(pub(crate) [u64; 4]);

/// Returns the group order `l` as four little-endian 64-bit words.
pub fn group_order() -> &'static [u64; 4] {
    static L: OnceLock<[u64; 4]> = OnceLock::new();
    L.get_or_init(|| {
        // 27742317777372353535851937790883648493, parsed digit by digit.
        let mut acc = [0u64; 4];
        for digit in "27742317777372353535851937790883648493".bytes() {
            acc = mul_small(&acc, 10);
            acc = add_small(&acc, (digit - b'0') as u64);
        }
        // + 2^252
        acc[3] += 1 << (252 - 192);
        acc
    })
}

fn mul_small(a: &[u64; 4], m: u64) -> [u64; 4] {
    let mut out = [0u64; 4];
    let mut carry: u128 = 0;
    for i in 0..4 {
        let v = (a[i] as u128) * (m as u128) + carry;
        out[i] = v as u64;
        carry = v >> 64;
    }
    debug_assert_eq!(carry, 0, "overflow in small multiplication");
    out
}

fn add_small(a: &[u64; 4], m: u64) -> [u64; 4] {
    let mut out = *a;
    let mut carry = m;
    for limb in out.iter_mut() {
        let (v, c) = limb.overflowing_add(carry);
        *limb = v;
        carry = c as u64;
        if carry == 0 {
            break;
        }
    }
    out
}

fn geq(a: &[u64; 4], b: &[u64; 4]) -> bool {
    for i in (0..4).rev() {
        if a[i] > b[i] {
            return true;
        }
        if a[i] < b[i] {
            return false;
        }
    }
    true
}

fn sub(a: &[u64; 4], b: &[u64; 4]) -> [u64; 4] {
    let mut out = [0u64; 4];
    let mut borrow = 0u64;
    for i in 0..4 {
        let (v1, b1) = a[i].overflowing_sub(b[i]);
        let (v2, b2) = v1.overflowing_sub(borrow);
        out[i] = v2;
        borrow = (b1 | b2) as u64;
    }
    debug_assert_eq!(borrow, 0, "underflow in scalar subtraction");
    out
}

impl Scalar {
    /// The scalar zero.
    pub const ZERO: Scalar = Scalar([0; 4]);
    /// The scalar one.
    pub const ONE: Scalar = Scalar([1, 0, 0, 0]);

    /// Reduces a 512-bit little-endian value modulo `l`.
    ///
    /// Uses bitwise shift-subtract long division: slow (512 steps) but
    /// self-evidently correct, and plenty fast for a research codebase.
    pub fn from_wide_bytes(bytes: &[u8; 64]) -> Scalar {
        let l = group_order();
        let mut rem = [0u64; 4]; // remainder < l < 2^253 always fits
        for bit in (0..512).rev() {
            // rem = rem * 2 + bit
            let mut carry = (bytes[bit / 8] >> (bit % 8)) & 1;
            for limb in rem.iter_mut() {
                let top = (*limb >> 63) as u8;
                *limb = (*limb << 1) | carry as u64;
                carry = top;
            }
            if geq(&rem, l) {
                rem = sub(&rem, l);
            }
        }
        Scalar(rem)
    }

    /// Reduces a 256-bit little-endian value modulo `l`.
    pub fn from_bytes_mod_order(bytes: &[u8; 32]) -> Scalar {
        let mut wide = [0u8; 64];
        wide[..32].copy_from_slice(bytes);
        Scalar::from_wide_bytes(&wide)
    }

    /// Interprets canonical little-endian bytes as a scalar, rejecting
    /// non-canonical encodings (values >= l). Required when verifying
    /// signatures to prevent malleability.
    pub fn from_canonical_bytes(bytes: &[u8; 32]) -> Option<Scalar> {
        let mut words = [0u64; 4];
        for i in 0..4 {
            let mut w = [0u8; 8];
            w.copy_from_slice(&bytes[i * 8..i * 8 + 8]);
            words[i] = u64::from_le_bytes(w);
        }
        if geq(&words, group_order()) {
            None
        } else {
            Some(Scalar(words))
        }
    }

    /// Serializes the scalar to 32 little-endian bytes.
    pub fn to_bytes(self) -> [u8; 32] {
        let mut out = [0u8; 32];
        for i in 0..4 {
            out[i * 8..i * 8 + 8].copy_from_slice(&self.0[i].to_le_bytes());
        }
        out
    }

    /// Modular addition.
    #[allow(clippy::should_implement_trait)] // by-value helper, not `ops::Add`
    pub fn add(self, other: Scalar) -> Scalar {
        let mut out = [0u64; 4];
        let mut carry = 0u64;
        for (i, o) in out.iter_mut().enumerate() {
            let v = (self.0[i] as u128) + (other.0[i] as u128) + (carry as u128);
            *o = v as u64;
            carry = (v >> 64) as u64;
        }
        // l < 2^253 and both inputs < l, so the sum fits in 254 bits: no
        // carry out, at most one subtraction needed.
        debug_assert_eq!(carry, 0);
        if geq(&out, group_order()) {
            out = sub(&out, group_order());
        }
        Scalar(out)
    }

    /// Modular multiplication.
    #[allow(clippy::should_implement_trait)] // by-value helper, not `ops::Mul`
    pub fn mul(self, other: Scalar) -> Scalar {
        let mut wide = [0u64; 8];
        for i in 0..4 {
            let mut carry: u128 = 0;
            for j in 0..4 {
                let v = (self.0[i] as u128) * (other.0[j] as u128) + (wide[i + j] as u128) + carry;
                wide[i + j] = v as u64;
                carry = v >> 64;
            }
            wide[i + 4] = carry as u64;
        }
        let mut bytes = [0u8; 64];
        for i in 0..8 {
            bytes[i * 8..i * 8 + 8].copy_from_slice(&wide[i].to_le_bytes());
        }
        Scalar::from_wide_bytes(&bytes)
    }

    /// True if the scalar is zero.
    pub fn is_zero(self) -> bool {
        self.0 == [0; 4]
    }

    /// Iterates the scalar's 256 bits from least significant to most.
    pub fn bits_le(self) -> impl Iterator<Item = bool> {
        let words = self.0;
        (0..256).map(move |i| (words[i / 64] >> (i % 64)) & 1 == 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_order_words() {
        // l mod 2 = 1 (l is odd, it's a prime).
        assert_eq!(group_order()[0] & 1, 1);
        // Top word carries exactly the 2^252 bit.
        assert_eq!(group_order()[3] >> 60, 1);
    }

    #[test]
    fn l_reduces_to_zero() {
        let l = group_order();
        let mut bytes = [0u8; 32];
        for i in 0..4 {
            bytes[i * 8..i * 8 + 8].copy_from_slice(&l[i].to_le_bytes());
        }
        assert!(Scalar::from_bytes_mod_order(&bytes).is_zero());
        assert!(Scalar::from_canonical_bytes(&bytes).is_none());
    }

    #[test]
    fn l_minus_one_is_canonical() {
        let l_minus_1 = sub(group_order(), &[1, 0, 0, 0]);
        let s = Scalar(l_minus_1);
        assert!(Scalar::from_canonical_bytes(&s.to_bytes()).is_some());
        // (l-1) + 1 = 0 mod l
        assert!(s.add(Scalar::ONE).is_zero());
    }

    #[test]
    fn small_arithmetic() {
        let a = Scalar([7, 0, 0, 0]);
        let b = Scalar([6, 0, 0, 0]);
        assert_eq!(a.mul(b), Scalar([42, 0, 0, 0]));
        assert_eq!(a.add(b), Scalar([13, 0, 0, 0]));
        assert_eq!(a.mul(Scalar::ONE), a);
        assert_eq!(a.mul(Scalar::ZERO), Scalar::ZERO);
    }

    #[test]
    fn wide_reduction_matches_narrow() {
        let mut narrow = [0u8; 32];
        narrow[0] = 0x99;
        narrow[20] = 0x77;
        let mut wide = [0u8; 64];
        wide[..32].copy_from_slice(&narrow);
        assert_eq!(
            Scalar::from_wide_bytes(&wide),
            Scalar::from_bytes_mod_order(&narrow)
        );
    }

    #[test]
    fn mul_distributes_over_add() {
        let a = Scalar::from_bytes_mod_order(&[0xab; 32]);
        let b = Scalar::from_bytes_mod_order(&[0x34; 32]);
        let c = Scalar::from_bytes_mod_order(&[0x77; 32]);
        assert_eq!(a.mul(b.add(c)), a.mul(b).add(a.mul(c)));
    }

    #[test]
    fn bits_roundtrip() {
        let a = Scalar([0b1011, 0, 0, 1]);
        let bits: Vec<bool> = a.bits_le().collect();
        assert!(bits[0] && bits[1] && !bits[2] && bits[3]);
        assert!(bits[192]);
        assert_eq!(bits.len(), 256);
    }
}
