//! Property-based tests of the simulation substrate: wire codec symmetry
//! and statistics sanity.

use proptest::prelude::*;
use spire_sim::stats::{cdf, fraction_within, percentile, Summary};
use spire_sim::{WireReader, WireWriter};

#[derive(Clone, Debug, PartialEq)]
enum Field {
    U8(u8),
    U16(u16),
    U32(u32),
    U64(u64),
    I64(i64),
    Bool(bool),
    Bytes(Vec<u8>),
    Str(String),
}

fn arb_field() -> impl Strategy<Value = Field> {
    prop_oneof![
        any::<u8>().prop_map(Field::U8),
        any::<u16>().prop_map(Field::U16),
        any::<u32>().prop_map(Field::U32),
        any::<u64>().prop_map(Field::U64),
        any::<i64>().prop_map(Field::I64),
        any::<bool>().prop_map(Field::Bool),
        proptest::collection::vec(any::<u8>(), 0..64).prop_map(Field::Bytes),
        "[a-z0-9 ]{0,24}".prop_map(Field::Str),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn wire_roundtrip_arbitrary_sequences(fields in proptest::collection::vec(arb_field(), 0..32)) {
        let mut w = WireWriter::new();
        for f in &fields {
            match f {
                Field::U8(v) => { w.u8(*v); }
                Field::U16(v) => { w.u16(*v); }
                Field::U32(v) => { w.u32(*v); }
                Field::U64(v) => { w.u64(*v); }
                Field::I64(v) => { w.i64(*v); }
                Field::Bool(v) => { w.bool(*v); }
                Field::Bytes(v) => { w.bytes(v); }
                Field::Str(v) => { w.string(v); }
            }
        }
        let buf = w.finish();
        let mut r = WireReader::new(&buf);
        for f in &fields {
            match f {
                Field::U8(v) => prop_assert_eq!(r.u8().unwrap(), *v),
                Field::U16(v) => prop_assert_eq!(r.u16().unwrap(), *v),
                Field::U32(v) => prop_assert_eq!(r.u32().unwrap(), *v),
                Field::U64(v) => prop_assert_eq!(r.u64().unwrap(), *v),
                Field::I64(v) => prop_assert_eq!(r.i64().unwrap(), *v),
                Field::Bool(v) => prop_assert_eq!(r.bool().unwrap(), *v),
                Field::Bytes(v) => prop_assert_eq!(r.bytes().unwrap(), v.as_slice()),
                Field::Str(v) => prop_assert_eq!(&r.string().unwrap(), v),
            }
        }
        prop_assert!(r.expect_end().is_ok());
    }

    #[test]
    fn percentiles_are_order_statistics(values in proptest::collection::vec(0.0f64..1e6, 1..200)) {
        let p0 = percentile(&values, 0.0);
        let p100 = percentile(&values, 100.0);
        let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!((p0 - min).abs() < 1e-9);
        prop_assert!((p100 - max).abs() < 1e-9);
        // Monotonicity.
        let p50 = percentile(&values, 50.0);
        let p90 = percentile(&values, 90.0);
        prop_assert!(p0 <= p50 && p50 <= p90 && p90 <= p100);
    }

    #[test]
    fn summary_mean_within_min_max(values in proptest::collection::vec(-1e9f64..1e9, 1..100)) {
        let s = Summary::of(&values).unwrap();
        prop_assert!(s.min <= s.mean + 1e-6 && s.mean <= s.max + 1e-6);
        prop_assert_eq!(s.count, values.len());
    }

    #[test]
    fn fraction_within_is_a_probability(values in proptest::collection::vec(0.0f64..100.0, 0..100),
                                        threshold in -10.0f64..110.0) {
        let f = fraction_within(&values, threshold);
        prop_assert!((0.0..=1.0).contains(&f));
    }

    #[test]
    fn cdf_is_monotone(values in proptest::collection::vec(0.0f64..1e3, 1..200),
                       points in 1usize..40) {
        let curve = cdf(&values, points);
        for w in curve.windows(2) {
            prop_assert!(w[1].0 >= w[0].0);
            prop_assert!(w[1].1 >= w[0].1);
        }
    }
}
