//! Metric collection: named counters, time series and histograms.

use crate::time::Time;
use crate::trace::Histogram;
use std::collections::BTreeMap;

/// Counters, time series and histograms collected during a simulation run.
///
/// Histograms are log-bucketed ([`Histogram`]) and meant for high-volume
/// series (per-phase latencies, overlay hop times) where keeping every raw
/// sample would be wasteful.
#[derive(Clone, Debug, Default)]
pub struct Metrics {
    counters: BTreeMap<String, u64>,
    series: BTreeMap<String, Vec<(Time, f64)>>,
    histograms: BTreeMap<String, Histogram>,
}

impl Metrics {
    /// Creates an empty metric store.
    pub fn new() -> Metrics {
        Metrics::default()
    }

    /// Increments a counter. The hot path looks the key up by `&str`
    /// first; a fresh `String` is allocated only on the first increment
    /// of a new name.
    pub fn count(&mut self, name: &str, delta: u64) {
        if let Some(c) = self.counters.get_mut(name) {
            *c += delta;
        } else {
            self.counters.insert(name.to_string(), delta);
        }
    }

    /// Appends a sample to a time series (allocates the key only on the
    /// first sample of a new name).
    pub fn record(&mut self, name: &str, at: Time, value: f64) {
        if let Some(samples) = self.series.get_mut(name) {
            samples.push((at, value));
        } else {
            self.series.insert(name.to_string(), vec![(at, value)]);
        }
    }

    /// Reads a counter (zero if never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Reads a time series (empty if never recorded).
    pub fn series(&self, name: &str) -> &[(Time, f64)] {
        self.series.get(name).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// The values of a series, without timestamps.
    pub fn values(&self, name: &str) -> Vec<f64> {
        self.series(name).iter().map(|(_, v)| *v).collect()
    }

    /// All counter names (sorted).
    pub fn counter_names(&self) -> impl Iterator<Item = &str> {
        self.counters.keys().map(|s| s.as_str())
    }

    /// All counters as `(name, value)` pairs (sorted by name) — the raw
    /// material for point-in-time snapshots and exporters.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// The samples of a series with timestamps in `(after, upto]`.
    /// Assumes the series is time-ordered (true for simulator runs, and
    /// for merged real-clock metrics after [`Metrics::sort_series`]);
    /// uses binary search, so windowed readers stay cheap on long series.
    pub fn series_window(&self, name: &str, after: Time, upto: Time) -> &[(Time, f64)] {
        let samples = self.series(name);
        let lo = samples.partition_point(|(t, _)| *t <= after);
        let hi = samples.partition_point(|(t, _)| *t <= upto);
        &samples[lo..hi]
    }

    /// All series names (sorted).
    pub fn series_names(&self) -> impl Iterator<Item = &str> {
        self.series.keys().map(|s| s.as_str())
    }

    /// Records one value into a named log-bucketed histogram (allocates
    /// the key only on the first observation of a new name).
    pub fn observe(&mut self, name: &str, value: u64) {
        if let Some(h) = self.histograms.get_mut(name) {
            h.observe(value);
        } else {
            let mut h = Histogram::new();
            h.observe(value);
            self.histograms.insert(name.to_string(), h);
        }
    }

    /// Reads a histogram (`None` if never observed).
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// All histogram names (sorted).
    pub fn histogram_names(&self) -> impl Iterator<Item = &str> {
        self.histograms.keys().map(|s| s.as_str())
    }

    /// Merges another metric store into this one.
    pub fn merge(&mut self, other: &Metrics) {
        for (name, v) in &other.counters {
            *self.counters.entry(name.clone()).or_insert(0) += v;
        }
        for (name, samples) in &other.series {
            self.series
                .entry(name.clone())
                .or_default()
                .extend_from_slice(samples);
        }
        for (name, h) in &other.histograms {
            self.histograms.entry(name.clone()).or_default().merge(h);
        }
    }

    /// Re-sorts every time series by timestamp. Needed after merging
    /// stores recorded concurrently (e.g. per-worker metrics from the
    /// real-clock runtime), whose interleaved samples are not ordered.
    pub fn sort_series(&mut self) {
        for samples in self.series.values_mut() {
            samples.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.total_cmp(&b.1)));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters() {
        let mut m = Metrics::new();
        assert_eq!(m.counter("x"), 0);
        m.count("x", 2);
        m.count("x", 3);
        assert_eq!(m.counter("x"), 5);
    }

    #[test]
    fn series() {
        let mut m = Metrics::new();
        m.record("lat", Time(1), 0.5);
        m.record("lat", Time(2), 0.7);
        assert_eq!(m.series("lat").len(), 2);
        assert_eq!(m.values("lat"), vec![0.5, 0.7]);
        assert!(m.series("none").is_empty());
    }

    #[test]
    fn merge() {
        let mut a = Metrics::new();
        a.count("c", 1);
        a.record("s", Time(1), 1.0);
        let mut b = Metrics::new();
        b.count("c", 2);
        b.record("s", Time(2), 2.0);
        a.merge(&b);
        assert_eq!(a.counter("c"), 3);
        assert_eq!(a.values("s"), vec![1.0, 2.0]);
    }

    #[test]
    fn merge_preserves_disjoint_names() {
        let mut a = Metrics::new();
        a.count("only_a", 1);
        let mut b = Metrics::new();
        b.count("only_b", 2);
        b.record("series_b", Time(1), 9.0);
        a.merge(&b);
        assert_eq!(a.counter("only_a"), 1);
        assert_eq!(a.counter("only_b"), 2);
        assert_eq!(a.values("series_b"), vec![9.0]);
        assert_eq!(a.counter_names().count(), 2);
    }

    #[test]
    fn merge_then_sort_series_interleaves_worker_samples() {
        // Two "workers" record the same series concurrently; after a
        // merge the samples are grouped per worker, not time-ordered.
        let mut a = Metrics::new();
        a.record("lat", Time(10), 1.0);
        a.record("lat", Time(30), 3.0);
        let mut b = Metrics::new();
        b.record("lat", Time(20), 2.0);
        b.record("lat", Time(40), 4.0);
        a.merge(&b);
        assert_eq!(a.values("lat"), vec![1.0, 3.0, 2.0, 4.0]);
        a.sort_series();
        assert_eq!(a.values("lat"), vec![1.0, 2.0, 3.0, 4.0]);
        let times: Vec<u64> = a.series("lat").iter().map(|(t, _)| t.0).collect();
        assert_eq!(times, vec![10, 20, 30, 40]);
    }

    #[test]
    fn merge_histograms_preserves_percentiles() {
        // Merging per-worker histograms must agree with one histogram
        // that observed every sample directly.
        let mut whole = Metrics::new();
        let mut a = Metrics::new();
        let mut b = Metrics::new();
        for v in 0..1000u64 {
            whole.observe("h", v);
            if v % 2 == 0 {
                a.observe("h", v);
            } else {
                b.observe("h", v);
            }
        }
        a.merge(&b);
        let merged = a.histogram("h").unwrap();
        let direct = whole.histogram("h").unwrap();
        assert_eq!(merged.count(), direct.count());
        assert_eq!(merged.min(), direct.min());
        assert_eq!(merged.max(), direct.max());
        assert_eq!(merged.percentile(50.0), direct.percentile(50.0));
        assert_eq!(merged.percentile(99.0), direct.percentile(99.0));
        assert!((merged.mean() - direct.mean()).abs() < 1e-9);
    }

    #[test]
    fn series_window_selects_half_open_interval() {
        let mut m = Metrics::new();
        for t in [10u64, 20, 30, 40, 50] {
            m.record("s", Time(t), t as f64);
        }
        let w = m.series_window("s", Time(20), Time(40));
        // (20, 40]: strictly after 20, up to and including 40.
        assert_eq!(w.iter().map(|(t, _)| t.0).collect::<Vec<_>>(), vec![30, 40]);
        assert!(m.series_window("s", Time(50), Time(99)).is_empty());
        assert!(m.series_window("missing", Time(0), Time(99)).is_empty());
        assert_eq!(m.series_window("s", Time(0), Time(u64::MAX)).len(), 5);
    }

    #[test]
    fn count_hot_path_accumulates_existing_keys() {
        let mut m = Metrics::new();
        for _ in 0..100 {
            m.count("hot", 1);
            m.record("hot_series", Time(1), 1.0);
            m.observe("hot_hist", 7);
        }
        assert_eq!(m.counter("hot"), 100);
        assert_eq!(m.values("hot_series").len(), 100);
        assert_eq!(m.histogram("hot_hist").unwrap().count(), 100);
        // Exactly one key exists per name despite 100 updates.
        assert_eq!(m.counter_names().count(), 1);
        assert_eq!(m.counters().count(), 1);
    }

    #[test]
    fn histograms_observe_and_merge() {
        let mut a = Metrics::new();
        assert!(a.histogram("h").is_none());
        a.observe("h", 10);
        a.observe("h", 20);
        let mut b = Metrics::new();
        b.observe("h", 30);
        b.observe("other", 5);
        a.merge(&b);
        let h = a.histogram("h").unwrap();
        assert_eq!(h.count(), 3);
        assert_eq!(h.min(), 10);
        assert_eq!(h.max(), 30);
        assert_eq!(a.histogram("other").unwrap().count(), 1);
        assert_eq!(a.histogram_names().collect::<Vec<_>>(), vec!["h", "other"]);
    }
}
