//! Metric collection: named counters, time series and histograms.

use crate::time::Time;
use crate::trace::Histogram;
use std::collections::BTreeMap;

/// Counters, time series and histograms collected during a simulation run.
///
/// Histograms are log-bucketed ([`Histogram`]) and meant for high-volume
/// series (per-phase latencies, overlay hop times) where keeping every raw
/// sample would be wasteful.
#[derive(Clone, Debug, Default)]
pub struct Metrics {
    counters: BTreeMap<String, u64>,
    series: BTreeMap<String, Vec<(Time, f64)>>,
    histograms: BTreeMap<String, Histogram>,
}

impl Metrics {
    /// Creates an empty metric store.
    pub fn new() -> Metrics {
        Metrics::default()
    }

    /// Increments a counter.
    pub fn count(&mut self, name: &str, delta: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += delta;
    }

    /// Appends a sample to a time series.
    pub fn record(&mut self, name: &str, at: Time, value: f64) {
        self.series
            .entry(name.to_string())
            .or_default()
            .push((at, value));
    }

    /// Reads a counter (zero if never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Reads a time series (empty if never recorded).
    pub fn series(&self, name: &str) -> &[(Time, f64)] {
        self.series.get(name).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// The values of a series, without timestamps.
    pub fn values(&self, name: &str) -> Vec<f64> {
        self.series(name).iter().map(|(_, v)| *v).collect()
    }

    /// All counter names (sorted).
    pub fn counter_names(&self) -> impl Iterator<Item = &str> {
        self.counters.keys().map(|s| s.as_str())
    }

    /// All series names (sorted).
    pub fn series_names(&self) -> impl Iterator<Item = &str> {
        self.series.keys().map(|s| s.as_str())
    }

    /// Records one value into a named log-bucketed histogram.
    pub fn observe(&mut self, name: &str, value: u64) {
        if let Some(h) = self.histograms.get_mut(name) {
            h.observe(value);
        } else {
            let mut h = Histogram::new();
            h.observe(value);
            self.histograms.insert(name.to_string(), h);
        }
    }

    /// Reads a histogram (`None` if never observed).
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// All histogram names (sorted).
    pub fn histogram_names(&self) -> impl Iterator<Item = &str> {
        self.histograms.keys().map(|s| s.as_str())
    }

    /// Merges another metric store into this one.
    pub fn merge(&mut self, other: &Metrics) {
        for (name, v) in &other.counters {
            *self.counters.entry(name.clone()).or_insert(0) += v;
        }
        for (name, samples) in &other.series {
            self.series
                .entry(name.clone())
                .or_default()
                .extend_from_slice(samples);
        }
        for (name, h) in &other.histograms {
            self.histograms.entry(name.clone()).or_default().merge(h);
        }
    }

    /// Re-sorts every time series by timestamp. Needed after merging
    /// stores recorded concurrently (e.g. per-worker metrics from the
    /// real-clock runtime), whose interleaved samples are not ordered.
    pub fn sort_series(&mut self) {
        for samples in self.series.values_mut() {
            samples.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.total_cmp(&b.1)));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters() {
        let mut m = Metrics::new();
        assert_eq!(m.counter("x"), 0);
        m.count("x", 2);
        m.count("x", 3);
        assert_eq!(m.counter("x"), 5);
    }

    #[test]
    fn series() {
        let mut m = Metrics::new();
        m.record("lat", Time(1), 0.5);
        m.record("lat", Time(2), 0.7);
        assert_eq!(m.series("lat").len(), 2);
        assert_eq!(m.values("lat"), vec![0.5, 0.7]);
        assert!(m.series("none").is_empty());
    }

    #[test]
    fn merge() {
        let mut a = Metrics::new();
        a.count("c", 1);
        a.record("s", Time(1), 1.0);
        let mut b = Metrics::new();
        b.count("c", 2);
        b.record("s", Time(2), 2.0);
        a.merge(&b);
        assert_eq!(a.counter("c"), 3);
        assert_eq!(a.values("s"), vec![1.0, 2.0]);
    }

    #[test]
    fn merge_preserves_disjoint_names() {
        let mut a = Metrics::new();
        a.count("only_a", 1);
        let mut b = Metrics::new();
        b.count("only_b", 2);
        b.record("series_b", Time(1), 9.0);
        a.merge(&b);
        assert_eq!(a.counter("only_a"), 1);
        assert_eq!(a.counter("only_b"), 2);
        assert_eq!(a.values("series_b"), vec![9.0]);
        assert_eq!(a.counter_names().count(), 2);
    }

    #[test]
    fn histograms_observe_and_merge() {
        let mut a = Metrics::new();
        assert!(a.histogram("h").is_none());
        a.observe("h", 10);
        a.observe("h", 20);
        let mut b = Metrics::new();
        b.observe("h", 30);
        b.observe("other", 5);
        a.merge(&b);
        let h = a.histogram("h").unwrap();
        assert_eq!(h.count(), 3);
        assert_eq!(h.min(), 10);
        assert_eq!(h.max(), 30);
        assert_eq!(a.histogram("other").unwrap().count(), 1);
        assert_eq!(a.histogram_names().collect::<Vec<_>>(), vec!["h", "other"]);
    }
}
