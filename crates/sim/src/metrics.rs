//! Metric collection: named counters and time series.

use crate::time::Time;
use std::collections::BTreeMap;

/// Counters and time series collected during a simulation run.
#[derive(Clone, Debug, Default)]
pub struct Metrics {
    counters: BTreeMap<String, u64>,
    series: BTreeMap<String, Vec<(Time, f64)>>,
}

impl Metrics {
    /// Creates an empty metric store.
    pub fn new() -> Metrics {
        Metrics::default()
    }

    /// Increments a counter.
    pub fn count(&mut self, name: &str, delta: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += delta;
    }

    /// Appends a sample to a time series.
    pub fn record(&mut self, name: &str, at: Time, value: f64) {
        self.series
            .entry(name.to_string())
            .or_default()
            .push((at, value));
    }

    /// Reads a counter (zero if never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Reads a time series (empty if never recorded).
    pub fn series(&self, name: &str) -> &[(Time, f64)] {
        self.series.get(name).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// The values of a series, without timestamps.
    pub fn values(&self, name: &str) -> Vec<f64> {
        self.series(name).iter().map(|(_, v)| *v).collect()
    }

    /// All counter names (sorted).
    pub fn counter_names(&self) -> impl Iterator<Item = &str> {
        self.counters.keys().map(|s| s.as_str())
    }

    /// All series names (sorted).
    pub fn series_names(&self) -> impl Iterator<Item = &str> {
        self.series.keys().map(|s| s.as_str())
    }

    /// Merges another metric store into this one.
    pub fn merge(&mut self, other: &Metrics) {
        for (name, v) in &other.counters {
            *self.counters.entry(name.clone()).or_insert(0) += v;
        }
        for (name, samples) in &other.series {
            self.series
                .entry(name.clone())
                .or_default()
                .extend_from_slice(samples);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters() {
        let mut m = Metrics::new();
        assert_eq!(m.counter("x"), 0);
        m.count("x", 2);
        m.count("x", 3);
        assert_eq!(m.counter("x"), 5);
    }

    #[test]
    fn series() {
        let mut m = Metrics::new();
        m.record("lat", Time(1), 0.5);
        m.record("lat", Time(2), 0.7);
        assert_eq!(m.series("lat").len(), 2);
        assert_eq!(m.values("lat"), vec![0.5, 0.7]);
        assert!(m.series("none").is_empty());
    }

    #[test]
    fn merge() {
        let mut a = Metrics::new();
        a.count("c", 1);
        a.record("s", Time(1), 1.0);
        let mut b = Metrics::new();
        b.count("c", 2);
        b.record("s", Time(2), 2.0);
        a.merge(&b);
        assert_eq!(a.counter("c"), 3);
        assert_eq!(a.values("s"), vec![1.0, 2.0]);
    }
}
