//! Virtual time for the discrete-event simulator.
//!
//! Time is a monotone microsecond counter starting at zero. Microsecond
//! resolution comfortably covers everything Spire cares about (WAN latencies
//! are tens of milliseconds; crypto costs are modeled in microseconds).

use serde::{Deserialize, Serialize};

/// An instant in virtual time (microseconds since simulation start).
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default, Serialize, Deserialize,
)]
pub struct Time(pub u64);

/// A span of virtual time (microseconds).
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default, Serialize, Deserialize,
)]
pub struct Span(pub u64);

impl Time {
    /// The simulation epoch.
    pub const ZERO: Time = Time(0);

    /// Advances this instant by `span`.
    pub fn after(self, span: Span) -> Time {
        Time(self.0.saturating_add(span.0))
    }

    /// The span since an earlier instant (saturating at zero).
    pub fn since(self, earlier: Time) -> Span {
        Span(self.0.saturating_sub(earlier.0))
    }

    /// This instant expressed in whole milliseconds.
    pub fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// This instant expressed in seconds (lossy).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }
}

impl Span {
    /// Zero-length span.
    pub const ZERO: Span = Span(0);

    /// Builds a span from microseconds.
    pub fn micros(us: u64) -> Span {
        Span(us)
    }

    /// Builds a span from milliseconds.
    pub fn millis(ms: u64) -> Span {
        Span(ms * 1_000)
    }

    /// Builds a span from seconds.
    pub fn secs(s: u64) -> Span {
        Span(s * 1_000_000)
    }

    /// The span in milliseconds (lossy).
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// The span in seconds (lossy).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Multiplies the span by an integer factor.
    pub fn times(self, factor: u64) -> Span {
        Span(self.0.saturating_mul(factor))
    }
}

impl std::ops::Add<Span> for Time {
    type Output = Time;
    fn add(self, rhs: Span) -> Time {
        self.after(rhs)
    }
}

impl std::ops::Add for Span {
    type Output = Span;
    fn add(self, rhs: Span) -> Span {
        Span(self.0.saturating_add(rhs.0))
    }
}

impl std::ops::Sub for Span {
    type Output = Span;
    fn sub(self, rhs: Span) -> Span {
        Span(self.0.saturating_sub(rhs.0))
    }
}

impl std::fmt::Display for Time {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl std::fmt::Display for Span {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else {
            write!(f, "{:.3}ms", self.as_millis_f64())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let t = Time::ZERO + Span::millis(5);
        assert_eq!(t, Time(5_000));
        assert_eq!(t.since(Time::ZERO), Span::millis(5));
        assert_eq!(Time::ZERO.since(t), Span::ZERO); // saturating
        assert_eq!(Span::secs(1) + Span::millis(500), Span(1_500_000));
        assert_eq!(Span::secs(2) - Span::secs(1), Span::secs(1));
        assert_eq!(Span::millis(3).times(4), Span::millis(12));
    }

    #[test]
    fn conversions() {
        assert_eq!(Time(2_500_000).as_millis(), 2_500);
        assert!((Span::millis(1500).as_secs_f64() - 1.5).abs() < 1e-9);
        assert!((Span::micros(1500).as_millis_f64() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn display() {
        assert_eq!(format!("{}", Span::millis(250)), "250.000ms");
        assert_eq!(format!("{}", Span::secs(3)), "3.000s");
        assert_eq!(format!("{}", Time(1_500_000)), "1.500s");
    }
}
