//! Time sources for the two hosting substrates.
//!
//! The discrete-event [`crate::World`] advances a virtual microsecond
//! counter; the real-clock runtime (`spire-rt`) reads a monotonic OS clock.
//! Both express "now" as a [`Time`] measured from substrate start, so actor
//! code and metrics are directly comparable across substrates.

use crate::time::Time;
use std::time::Instant;

/// A source of [`Time`] instants: virtual (driven by the event loop) or
/// monotonic (driven by the OS clock).
#[derive(Clone, Debug)]
pub enum Clock {
    /// Simulated time, advanced explicitly by the event loop.
    Virtual(Time),
    /// Wall-clock time, measured from `start` with a monotonic clock.
    Monotonic {
        /// The substrate's epoch; `now()` is the elapsed time since it.
        start: Instant,
    },
}

impl Clock {
    /// A virtual clock at the simulation epoch.
    pub fn virtual_at_zero() -> Clock {
        Clock::Virtual(Time::ZERO)
    }

    /// A monotonic clock whose epoch is the moment of this call.
    pub fn monotonic() -> Clock {
        Clock::Monotonic {
            start: Instant::now(),
        }
    }

    /// The current instant, measured from the clock's epoch.
    #[inline]
    pub fn now(&self) -> Time {
        match self {
            Clock::Virtual(t) => *t,
            Clock::Monotonic { start } => Time(start.elapsed().as_micros() as u64),
        }
    }

    /// Advances a virtual clock to `t` (no-op on a monotonic clock, which
    /// only the OS advances). Virtual time never moves backwards.
    #[inline]
    pub fn advance_to(&mut self, t: Time) {
        if let Clock::Virtual(now) = self {
            *now = (*now).max(t);
        }
    }

    /// True for the event-loop-driven variant.
    pub fn is_virtual(&self) -> bool {
        matches!(self, Clock::Virtual(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn virtual_clock_advances_monotonically() {
        let mut c = Clock::virtual_at_zero();
        assert!(c.is_virtual());
        assert_eq!(c.now(), Time::ZERO);
        c.advance_to(Time(500));
        assert_eq!(c.now(), Time(500));
        c.advance_to(Time(100)); // never backwards
        assert_eq!(c.now(), Time(500));
    }

    #[test]
    fn monotonic_clock_moves_forward() {
        let mut c = Clock::monotonic();
        assert!(!c.is_virtual());
        let a = c.now();
        c.advance_to(Time(u64::MAX)); // no-op
        std::thread::sleep(std::time::Duration::from_millis(2));
        let b = c.now();
        assert!(b > a, "monotonic clock did not advance: {a} -> {b}");
    }
}
