//! Summary statistics used by the experiment harness (percentiles, CDFs).

use serde::{Deserialize, Serialize};

/// A percentile/mean summary of a sample set.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Sample count.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Minimum.
    pub min: f64,
    /// Median.
    pub p50: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 99th percentile.
    pub p99: f64,
    /// 99.9th percentile.
    pub p999: f64,
    /// Maximum.
    pub max: f64,
}

impl Summary {
    /// Computes a summary; returns `None` for an empty sample set.
    pub fn of(values: &[f64]) -> Option<Summary> {
        if values.is_empty() {
            return None;
        }
        let mut sorted: Vec<f64> = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in samples"));
        let mean = sorted.iter().sum::<f64>() / sorted.len() as f64;
        Some(Summary {
            count: sorted.len(),
            mean,
            min: sorted[0],
            p50: percentile_sorted(&sorted, 50.0),
            p90: percentile_sorted(&sorted, 90.0),
            p99: percentile_sorted(&sorted, 99.0),
            p999: percentile_sorted(&sorted, 99.9),
            max: *sorted.last().unwrap(),
        })
    }
}

impl std::fmt::Display for Summary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} mean={:.2} p50={:.2} p90={:.2} p99={:.2} p99.9={:.2} max={:.2}",
            self.count, self.mean, self.p50, self.p90, self.p99, self.p999, self.max
        )
    }
}

/// Percentile (nearest-rank with linear interpolation) of pre-sorted data.
///
/// # Panics
///
/// Panics if `sorted` is empty or `pct` is outside `[0, 100]`.
pub fn percentile_sorted(sorted: &[f64], pct: f64) -> f64 {
    assert!(!sorted.is_empty(), "empty sample set");
    assert!((0.0..=100.0).contains(&pct), "percentile out of range");
    if sorted.len() == 1 {
        return sorted[0];
    }
    let rank = pct / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

/// Percentile of unsorted data.
pub fn percentile(values: &[f64], pct: f64) -> f64 {
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in samples"));
    percentile_sorted(&sorted, pct)
}

/// The fraction of samples at or below `threshold`.
pub fn fraction_within(values: &[f64], threshold: f64) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().filter(|v| **v <= threshold).count() as f64 / values.len() as f64
}

/// Evaluates the empirical CDF at `points`, returning `(x, F(x))` pairs.
pub fn cdf(values: &[f64], points: usize) -> Vec<(f64, f64)> {
    if values.is_empty() || points == 0 {
        return Vec::new();
    }
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in samples"));
    let n = sorted.len();
    (1..=points)
        .map(|i| {
            let q = i as f64 / points as f64;
            let idx = ((q * n as f64).ceil() as usize).clamp(1, n) - 1;
            (sorted[idx], q)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basic() {
        let values: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let s = Summary::of(&values).unwrap();
        assert_eq!(s.count, 100);
        assert!((s.mean - 50.5).abs() < 1e-9);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 100.0);
        assert!((s.p50 - 50.5).abs() < 1e-9);
        assert!(s.p99 > 98.0 && s.p99 <= 100.0);
    }

    #[test]
    fn summary_empty() {
        assert!(Summary::of(&[]).is_none());
    }

    #[test]
    fn summary_single() {
        let s = Summary::of(&[7.0]).unwrap();
        assert_eq!(s.p50, 7.0);
        assert_eq!(s.p999, 7.0);
    }

    #[test]
    fn percentile_interpolates() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert!((percentile(&v, 50.0) - 2.5).abs() < 1e-9);
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 100.0), 4.0);
    }

    #[test]
    fn percentile_sorted_single_element() {
        let v = [42.0];
        assert_eq!(percentile_sorted(&v, 0.0), 42.0);
        assert_eq!(percentile_sorted(&v, 50.0), 42.0);
        assert_eq!(percentile_sorted(&v, 100.0), 42.0);
    }

    #[test]
    fn percentile_sorted_extremes_hit_min_max() {
        let v = [1.0, 5.0, 9.0];
        assert_eq!(percentile_sorted(&v, 0.0), 1.0);
        assert_eq!(percentile_sorted(&v, 100.0), 9.0);
    }

    #[test]
    #[should_panic(expected = "percentile out of range")]
    fn percentile_sorted_rejects_out_of_range() {
        percentile_sorted(&[1.0], 101.0);
    }

    #[test]
    fn fraction_within_boundary_is_inclusive() {
        let v = [1.0, 2.0, 3.0];
        assert!((fraction_within(&v, 2.0) - 2.0 / 3.0).abs() < 1e-9);
        assert_eq!(fraction_within(&v, 3.0), 1.0);
    }

    #[test]
    fn fraction_within_threshold() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert!((fraction_within(&v, 2.5) - 0.5).abs() < 1e-9);
        assert_eq!(fraction_within(&v, 0.5), 0.0);
        assert_eq!(fraction_within(&v, 10.0), 1.0);
        assert_eq!(fraction_within(&[], 1.0), 0.0);
    }

    #[test]
    fn cdf_monotone() {
        let values: Vec<f64> = (0..1000).map(|i| (i % 37) as f64).collect();
        let curve = cdf(&values, 20);
        assert_eq!(curve.len(), 20);
        for w in curve.windows(2) {
            assert!(w[1].0 >= w[0].0);
            assert!(w[1].1 > w[0].1);
        }
        assert!((curve.last().unwrap().1 - 1.0).abs() < 1e-9);
    }
}
