//! Structured tracing: flight recorder, causal spans, histograms, exporters.
//!
//! The paper's headline claims are latency-shaped — supervisory updates must
//! beat a 100 ms SLA even during view changes, proactive recovery and overlay
//! DoS — so end-to-end samples alone are not enough: this module shows *where*
//! the time goes. Four pieces, all zero-external-dependency:
//!
//! * Typed [`TraceKind`] events recorded into a bounded ring-buffer
//!   [`FlightRecorder`], whose tail is dumped on safety-check failure or
//!   panic for postmortems.
//! * Causal spans keyed by `(client, cseq)` via [`span_key`] that follow one
//!   supervisory update across protocol phases ([`SpanPhase`]): proxy submit →
//!   replica receive → pre-order certification → ordering → execution →
//!   f+1 confirmation. Phase marks are first-wins, so the span measures the
//!   fastest correct replica through each phase — the quantity the SLA sees.
//! * Log-bucketed [`Histogram`]s (32 sub-buckets per octave, ≤ ~1.6 %
//!   relative error) replacing raw sample vectors for high-volume series.
//! * Exporters: human-readable tail dump, JSONL event dump, and Chrome
//!   `trace_event` JSON loadable in `chrome://tracing` or Perfetto.
//!
//! The disabled mode is compile-cheap: every recording entry point checks one
//! `bool` and returns; event payloads are `Copy` scalars and `&'static str`,
//! so a disabled hook performs no heap allocation.

use crate::time::Time;
use std::collections::{BTreeMap, HashSet, VecDeque};
use std::fmt::Write as _;

// ---------------------------------------------------------------------------
// Events
// ---------------------------------------------------------------------------

/// A typed trace event. All payloads are `Copy` so constructing one on a
/// disabled tracer allocates nothing.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum TraceKind {
    /// A message left a process onto a link.
    MsgSend { from: u32, to: u32, len: u32 },
    /// A message was delivered to an up process.
    MsgRecv { to: u32, from: u32, len: u32 },
    /// A timer fired (possibly suppressed as stale at dispatch).
    TimerFire { pid: u32, tag: u64 },
    /// A process crashed.
    Crash { pid: u32 },
    /// A process restarted with a fresh state machine.
    Restart { pid: u32 },
    /// A replica installed a new view.
    ViewChange { replica: u32, view: u64 },
    /// A replica sent a suspect-leader message for its current view.
    SuspectLeader { replica: u32, view: u64 },
    /// A recovering replica began state transfer.
    RecoveryStart { replica: u32 },
    /// A recovering replica finished state transfer and rejoined.
    RecoveryDone { replica: u32 },
    /// A checkpoint became stable at a replica.
    Checkpoint { replica: u32, seq: u64 },
    /// A Spines daemon forwarded a data frame one hop.
    OverlayHop {
        daemon: u32,
        src: u16,
        dst: u16,
        ttl: u8,
    },
    /// A span phase mark (also fed to the span tracker).
    PhaseMark {
        pid: u32,
        key: u64,
        phase: SpanPhase,
    },
    /// A free-form labelled point event.
    Mark {
        pid: u32,
        label: &'static str,
        value: u64,
    },
}

impl TraceKind {
    /// Short machine-readable event name.
    pub fn name(&self) -> &'static str {
        match self {
            TraceKind::MsgSend { .. } => "msg_send",
            TraceKind::MsgRecv { .. } => "msg_recv",
            TraceKind::TimerFire { .. } => "timer_fire",
            TraceKind::Crash { .. } => "crash",
            TraceKind::Restart { .. } => "restart",
            TraceKind::ViewChange { .. } => "view_change",
            TraceKind::SuspectLeader { .. } => "suspect_leader",
            TraceKind::RecoveryStart { .. } => "recovery_start",
            TraceKind::RecoveryDone { .. } => "recovery_done",
            TraceKind::Checkpoint { .. } => "checkpoint",
            TraceKind::OverlayHop { .. } => "overlay_hop",
            TraceKind::PhaseMark { .. } => "phase_mark",
            TraceKind::Mark { .. } => "mark",
        }
    }

    /// The process the event is attributed to (the sender for sends, the
    /// receiver for receives).
    pub fn pid(&self) -> u32 {
        match *self {
            TraceKind::MsgSend { from, .. } => from,
            TraceKind::MsgRecv { to, .. } => to,
            TraceKind::TimerFire { pid, .. }
            | TraceKind::Crash { pid }
            | TraceKind::Restart { pid }
            | TraceKind::PhaseMark { pid, .. }
            | TraceKind::Mark { pid, .. } => pid,
            TraceKind::ViewChange { replica, .. }
            | TraceKind::SuspectLeader { replica, .. }
            | TraceKind::RecoveryStart { replica }
            | TraceKind::RecoveryDone { replica }
            | TraceKind::Checkpoint { replica, .. } => replica,
            TraceKind::OverlayHop { daemon, .. } => daemon,
        }
    }

    /// Writes the event payload as JSON object fields (no braces).
    fn write_json_args(&self, out: &mut String) {
        match *self {
            TraceKind::MsgSend { from, to, len } | TraceKind::MsgRecv { to, from, len } => {
                let _ = write!(out, "\"from\":{from},\"to\":{to},\"len\":{len}");
            }
            TraceKind::TimerFire { pid, tag } => {
                let _ = write!(out, "\"pid\":{pid},\"tag\":{tag}");
            }
            TraceKind::Crash { pid } | TraceKind::Restart { pid } => {
                let _ = write!(out, "\"pid\":{pid}");
            }
            TraceKind::ViewChange { replica, view }
            | TraceKind::SuspectLeader { replica, view } => {
                let _ = write!(out, "\"replica\":{replica},\"view\":{view}");
            }
            TraceKind::RecoveryStart { replica } | TraceKind::RecoveryDone { replica } => {
                let _ = write!(out, "\"replica\":{replica}");
            }
            TraceKind::Checkpoint { replica, seq } => {
                let _ = write!(out, "\"replica\":{replica},\"seq\":{seq}");
            }
            TraceKind::OverlayHop {
                daemon,
                src,
                dst,
                ttl,
            } => {
                let _ = write!(
                    out,
                    "\"daemon\":{daemon},\"src\":{src},\"dst\":{dst},\"ttl\":{ttl}"
                );
            }
            TraceKind::PhaseMark { pid, key, phase } => {
                let _ = write!(
                    out,
                    "\"pid\":{pid},\"key\":{key},\"phase\":\"{}\"",
                    phase.name()
                );
            }
            TraceKind::Mark { pid, label, value } => {
                let _ = write!(out, "\"pid\":{pid},\"label\":\"{label}\",\"value\":{value}");
            }
        }
    }

    /// Writes a terse human-readable description (for the tail dump).
    fn write_human(&self, out: &mut String) {
        match *self {
            TraceKind::MsgSend { from, to, len } => {
                let _ = write!(out, "send -> p{to} ({len} B) from p{from}");
            }
            TraceKind::MsgRecv { to, from, len } => {
                let _ = write!(out, "recv <- p{from} ({len} B) at p{to}");
            }
            TraceKind::TimerFire { tag, .. } => {
                let _ = write!(out, "timer fire tag={tag}");
            }
            TraceKind::Crash { .. } => {
                let _ = write!(out, "CRASH");
            }
            TraceKind::Restart { .. } => {
                let _ = write!(out, "restart");
            }
            TraceKind::ViewChange { view, .. } => {
                let _ = write!(out, "view change -> view {view}");
            }
            TraceKind::SuspectLeader { view, .. } => {
                let _ = write!(out, "suspect leader of view {view}");
            }
            TraceKind::RecoveryStart { .. } => {
                let _ = write!(out, "recovery start");
            }
            TraceKind::RecoveryDone { .. } => {
                let _ = write!(out, "recovery done");
            }
            TraceKind::Checkpoint { seq, .. } => {
                let _ = write!(out, "checkpoint stable at seq {seq}");
            }
            TraceKind::OverlayHop { src, dst, ttl, .. } => {
                let _ = write!(out, "overlay hop {src}->{dst} ttl={ttl}");
            }
            TraceKind::PhaseMark { key, phase, .. } => {
                let _ = write!(out, "span {key:#x} phase {}", phase.name());
            }
            TraceKind::Mark { label, value, .. } => {
                let _ = write!(out, "{label}={value}");
            }
        }
    }
}

/// A timestamped trace event.
#[derive(Clone, Copy, Debug)]
pub struct TraceEvent {
    /// Virtual time the event happened.
    pub at: Time,
    /// What happened.
    pub kind: TraceKind,
}

// ---------------------------------------------------------------------------
// Flight recorder
// ---------------------------------------------------------------------------

/// Bounded ring buffer of recent trace events.
///
/// When full, the oldest event is evicted and counted in [`dropped`]
/// (`FlightRecorder::dropped`), so the recorder always holds the most recent
/// window — exactly what a postmortem needs.
#[derive(Clone, Debug, Default)]
pub struct FlightRecorder {
    buf: VecDeque<TraceEvent>,
    cap: usize,
    dropped: u64,
}

impl FlightRecorder {
    /// Creates a recorder holding at most `cap` events.
    pub fn new(cap: usize) -> FlightRecorder {
        FlightRecorder {
            buf: VecDeque::with_capacity(cap.min(1 << 20)),
            cap,
            dropped: 0,
        }
    }

    /// Appends an event, evicting the oldest when at capacity.
    pub fn push(&mut self, ev: TraceEvent) {
        if self.cap == 0 {
            self.dropped += 1;
            return;
        }
        if self.buf.len() == self.cap {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(ev);
    }

    /// Number of events currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when no events are held.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Number of events evicted (oldest-first) since creation.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Iterates the held events oldest-first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.buf.iter()
    }

    /// Iterates the most recent `n` events oldest-first.
    pub fn tail(&self, n: usize) -> impl Iterator<Item = &TraceEvent> {
        let skip = self.buf.len().saturating_sub(n);
        self.buf.iter().skip(skip)
    }
}

// ---------------------------------------------------------------------------
// Spans
// ---------------------------------------------------------------------------

/// Protocol phases a supervisory update passes through, in causal order.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum SpanPhase {
    /// Client (RTU proxy or HMI) signed and sent the operation.
    Submit,
    /// A replica accepted the operation (signature + dedup passed).
    Recv,
    /// The operation's PO-Request became certified (2f+k+1 acks).
    Preorder,
    /// The containing matrix slot was globally ordered (committed).
    Order,
    /// A replica executed the operation against the application.
    Execute,
    /// The client collected f+1 matching replies.
    Confirm,
}

/// Number of [`SpanPhase`] variants.
pub const SPAN_PHASES: usize = 6;

impl SpanPhase {
    /// Index into a per-span phase-time array.
    pub fn idx(self) -> usize {
        self as usize
    }

    /// Short phase name.
    pub fn name(self) -> &'static str {
        match self {
            SpanPhase::Submit => "submit",
            SpanPhase::Recv => "recv",
            SpanPhase::Preorder => "preorder",
            SpanPhase::Order => "order",
            SpanPhase::Execute => "execute",
            SpanPhase::Confirm => "confirm",
        }
    }
}

/// Packs a client id and client sequence number into a span key.
///
/// Client ids fit in 24 bits and sequence numbers in 40 bits for any run this
/// simulator can complete, so the packing is collision-free in practice.
pub fn span_key(client: u32, cseq: u64) -> u64 {
    ((client as u64) << 40) | (cseq & 0xFF_FFFF_FFFF)
}

/// Histogram names for each adjacent phase delta plus the end-to-end total,
/// as `(histogram name, start phase, end phase)`.
pub const SPAN_DELTAS: [(&str, SpanPhase, SpanPhase); 6] = [
    ("span.overlay_in_us", SpanPhase::Submit, SpanPhase::Recv),
    ("span.preorder_us", SpanPhase::Recv, SpanPhase::Preorder),
    ("span.order_us", SpanPhase::Preorder, SpanPhase::Order),
    ("span.execute_us", SpanPhase::Order, SpanPhase::Execute),
    ("span.confirm_us", SpanPhase::Execute, SpanPhase::Confirm),
    ("span.total_us", SpanPhase::Submit, SpanPhase::Confirm),
];

/// A completed (or abandoned) span: first-wins timestamps per phase.
#[derive(Clone, Copy, Debug)]
pub struct SpanRecord {
    /// Key from [`span_key`].
    pub key: u64,
    /// First time each phase was reached, indexed by [`SpanPhase::idx`].
    pub at: [Option<Time>; SPAN_PHASES],
}

impl SpanRecord {
    /// The client id encoded in the key.
    pub fn client(&self) -> u32 {
        (self.key >> 40) as u32
    }

    /// The client sequence number encoded in the key.
    pub fn cseq(&self) -> u64 {
        self.key & 0xFF_FFFF_FFFF
    }

    /// Phase deltas in microseconds, for each [`SPAN_DELTAS`] entry whose
    /// endpoints were both reached.
    pub fn phase_deltas(&self) -> Vec<(&'static str, u64)> {
        let mut out = Vec::with_capacity(SPAN_DELTAS.len());
        for (name, a, b) in SPAN_DELTAS {
            if let (Some(start), Some(end)) = (self.at[a.idx()], self.at[b.idx()]) {
                if end >= start {
                    out.push((name, end.0 - start.0));
                }
            }
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

/// Sub-bucket resolution: 2^5 = 32 sub-buckets per power of two.
const HIST_SUB_BITS: u32 = 5;
const HIST_SUB: u64 = 1 << HIST_SUB_BITS;

/// Log-bucketed histogram of `u64` values (typically microseconds).
///
/// Values below 32 get exact unit buckets; above that, each power of two is
/// split into 32 sub-buckets, bounding relative error at 1/64 (~1.6 %).
/// Memory is O(buckets touched), growing on demand; merging is element-wise.
#[derive(Clone, Debug, Default)]
pub struct Histogram {
    counts: Vec<u64>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

fn bucket_index(v: u64) -> usize {
    if v < HIST_SUB {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros() as u64;
    let shift = msb - HIST_SUB_BITS as u64;
    let sub = (v >> shift) & (HIST_SUB - 1);
    ((msb - HIST_SUB_BITS as u64 + 1) * HIST_SUB + sub) as usize
}

/// Lowest value mapping to bucket `idx`.
fn bucket_lo(idx: usize) -> u64 {
    if idx < HIST_SUB as usize {
        return idx as u64;
    }
    let q = (idx as u64) >> HIST_SUB_BITS;
    let sub = (idx as u64) & (HIST_SUB - 1);
    // u128 intermediate: the topmost buckets' bounds would wrap in u64.
    let lo = ((HIST_SUB + sub) as u128) << (q - 1);
    lo.min(u64::MAX as u128) as u64
}

/// Midpoint of bucket `idx`, the representative value for percentiles.
fn bucket_mid(idx: usize) -> f64 {
    if idx < HIST_SUB as usize {
        return idx as f64;
    }
    let q = (idx as u64) >> HIST_SUB_BITS;
    let width = 1u64 << (q - 1);
    bucket_lo(idx) as f64 + (width - 1) as f64 / 2.0
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Records one value.
    pub fn observe(&mut self, value: u64) {
        let idx = bucket_index(value);
        if idx >= self.counts.len() {
            self.counts.resize(idx + 1, 0);
        }
        self.counts[idx] += 1;
        if self.count == 0 {
            self.min = value;
            self.max = value;
        } else {
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }
        self.count += 1;
        self.sum += value as u128;
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Smallest recorded value (0 if empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded value (0 if empty).
    pub fn max(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.max
        }
    }

    /// Mean of recorded values (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Approximate percentile (`pct` in 0..=100; clamped outside).
    ///
    /// Exact at the extremes (`min`/`max`); elsewhere accurate to the bucket
    /// width, i.e. within ~1.6 % relative error.
    pub fn percentile(&self, pct: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        if pct <= 0.0 {
            return self.min as f64;
        }
        if pct >= 100.0 {
            return self.max as f64;
        }
        let target = ((pct / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut cum = 0u64;
        for (idx, c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= target {
                return bucket_mid(idx).clamp(self.min as f64, self.max as f64);
            }
        }
        self.max as f64
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        if other.counts.len() > self.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (slot, c) in self.counts.iter_mut().zip(other.counts.iter()) {
            *slot += c;
        }
        if self.count == 0 {
            self.min = other.min;
            self.max = other.max;
        } else {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
        self.count += other.count;
        self.sum += other.sum;
    }
}

// ---------------------------------------------------------------------------
// Tracer
// ---------------------------------------------------------------------------

/// Spans still collecting phase marks are capped; beyond this the oldest is
/// abandoned (clients that never confirm must not leak memory).
const MAX_OPEN_SPANS: usize = 1 << 16;
/// Completed spans kept for export.
const MAX_COMPLETED_SPANS: usize = 200_000;

/// The per-world tracing front end: flight recorder + span tracker.
///
/// Disabled by default. Every recording method begins with a single branch on
/// `enabled`, so the disabled hot path does no work and no allocation.
#[derive(Debug, Default)]
pub struct Tracer {
    enabled: bool,
    recorder: FlightRecorder,
    open: BTreeMap<u64, [Option<Time>; SPAN_PHASES]>,
    completed: Vec<SpanRecord>,
    overlay: HashSet<u32>,
}

impl Tracer {
    /// Creates a disabled tracer (the [`crate::World`] default).
    pub fn disabled() -> Tracer {
        Tracer::default()
    }

    /// Enables tracing in place with a flight recorder of `cap` events.
    /// Overlay-pid marks made earlier are preserved.
    pub fn enable(&mut self, cap: usize) {
        self.enabled = true;
        self.recorder = FlightRecorder::new(cap);
    }

    /// Whether tracing is on.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Records an event into the flight recorder. No-op (and no allocation)
    /// when disabled.
    #[inline]
    pub fn record(&mut self, at: Time, kind: TraceKind) {
        if !self.enabled {
            return;
        }
        self.recorder.push(TraceEvent { at, kind });
    }

    /// Marks a span phase (first-wins). Returns the completed record when the
    /// mark is [`SpanPhase::Confirm`], so the caller can feed histograms.
    #[inline]
    pub fn mark(&mut self, at: Time, pid: u32, key: u64, phase: SpanPhase) -> Option<SpanRecord> {
        if !self.enabled {
            return None;
        }
        self.recorder.push(TraceEvent {
            at,
            kind: TraceKind::PhaseMark { pid, key, phase },
        });
        let times = self.open.entry(key).or_default();
        if times[phase.idx()].is_none() {
            times[phase.idx()] = Some(at);
        }
        if phase == SpanPhase::Confirm {
            let at = self.open.remove(&key).unwrap_or_default();
            let rec = SpanRecord { key, at };
            if self.completed.len() < MAX_COMPLETED_SPANS {
                self.completed.push(rec);
            }
            return Some(rec);
        }
        if self.open.len() > MAX_OPEN_SPANS {
            self.open.pop_first();
        }
        None
    }

    /// Marks a process as an overlay daemon, so [`crate::World`] attributes
    /// daemon-to-daemon transit to the overlay-hop histogram. Works before
    /// `enable` so deployments can mark at build time.
    pub fn mark_overlay(&mut self, pid: u32) {
        self.overlay.insert(pid);
    }

    /// Whether a process was marked as an overlay daemon.
    #[inline]
    pub fn is_overlay(&self, pid: u32) -> bool {
        self.overlay.contains(&pid)
    }

    /// The flight recorder.
    pub fn recorder(&self) -> &FlightRecorder {
        &self.recorder
    }

    /// Completed spans, in completion order.
    pub fn completed_spans(&self) -> &[SpanRecord] {
        &self.completed
    }

    /// Spans that collected at least one mark but never confirmed.
    pub fn open_span_count(&self) -> usize {
        self.open.len()
    }

    // -- Exporters ----------------------------------------------------------

    /// Human-readable dump of the last `n` events, one per line, for
    /// postmortems (safety-check failure, replica panic).
    pub fn dump_tail(&self, n: usize, name_of: &dyn Fn(u32) -> String) -> String {
        let mut out = String::new();
        let total = self.recorder.len();
        let shown = n.min(total);
        let _ = writeln!(
            out,
            "flight recorder: showing last {shown} of {total} held events ({} evicted)",
            self.recorder.dropped()
        );
        for ev in self.recorder.tail(n) {
            let pid = ev.kind.pid();
            let _ = write!(
                out,
                "[{:>12.6}s] {:<12} {:<14} ",
                ev.at.0 as f64 / 1e6,
                name_of(pid),
                ev.kind.name()
            );
            ev.kind.write_human(&mut out);
            out.push('\n');
        }
        out
    }

    /// JSONL export: one JSON object per line — every held event, then every
    /// completed span.
    pub fn events_jsonl(&self, name_of: &dyn Fn(u32) -> String) -> String {
        let mut out = String::new();
        for ev in self.recorder.events() {
            let _ = write!(
                out,
                "{{\"ts_us\":{},\"ev\":\"{}\",\"proc\":\"{}\",",
                ev.at.0,
                ev.kind.name(),
                name_of(ev.kind.pid())
            );
            ev.kind.write_json_args(&mut out);
            out.push_str("}\n");
        }
        for rec in &self.completed {
            let _ = write!(
                out,
                "{{\"ev\":\"span\",\"client\":{},\"cseq\":{}",
                rec.client(),
                rec.cseq()
            );
            for phase in [
                SpanPhase::Submit,
                SpanPhase::Recv,
                SpanPhase::Preorder,
                SpanPhase::Order,
                SpanPhase::Execute,
                SpanPhase::Confirm,
            ] {
                if let Some(t) = rec.at[phase.idx()] {
                    let _ = write!(out, ",\"{}_us\":{}", phase.name(), t.0);
                }
            }
            out.push_str("}\n");
        }
        out
    }

    /// Chrome `trace_event` JSON (array form), loadable in `chrome://tracing`
    /// or Perfetto.
    ///
    /// Layout: trace pid 0 carries instant events, one lane (tid) per
    /// simulated process, named via metadata records; trace pid 1 carries one
    /// lane per supervisory update with an `X` (complete) slice per phase.
    /// Virtual microseconds map directly to the `ts`/`dur` fields.
    pub fn chrome_trace(&self, name_of: &dyn Fn(u32) -> String) -> String {
        let mut out = String::from("[");
        let mut first = true;
        let mut emit = |out: &mut String, obj: &str| {
            if !first {
                out.push(',');
            }
            first = false;
            out.push('\n');
            out.push_str(obj);
        };
        emit(
            &mut out,
            "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,\
             \"args\":{\"name\":\"sim events\"}}",
        );
        emit(
            &mut out,
            "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\
             \"args\":{\"name\":\"supervisory updates\"}}",
        );
        let mut pids: Vec<u32> = self.recorder.events().map(|e| e.kind.pid()).collect();
        pids.sort_unstable();
        pids.dedup();
        for pid in &pids {
            emit(
                &mut out,
                &format!(
                    "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{pid},\
                     \"args\":{{\"name\":\"{}\"}}}}",
                    name_of(*pid)
                ),
            );
        }
        for ev in self.recorder.events() {
            let mut obj = format!(
                "{{\"name\":\"{}\",\"ph\":\"i\",\"s\":\"t\",\"pid\":0,\"tid\":{},\"ts\":{},\
                 \"args\":{{",
                ev.kind.name(),
                ev.kind.pid(),
                ev.at.0
            );
            ev.kind.write_json_args(&mut obj);
            obj.push_str("}}");
            emit(&mut out, &obj);
        }
        for rec in &self.completed {
            // One slice per adjacent phase pair (skip the total — it would
            // just shadow the others on the same lane). A span too sparse for
            // any adjacent pair still gets its end-to-end slice.
            let mut sliced = false;
            for (name, a, b) in SPAN_DELTAS.iter().take(SPAN_DELTAS.len() - 1) {
                if let (Some(start), Some(end)) = (rec.at[a.idx()], rec.at[b.idx()]) {
                    if end >= start {
                        sliced = true;
                        emit(
                            &mut out,
                            &format!(
                                "{{\"name\":\"{name}\",\"cat\":\"update\",\"ph\":\"X\",\
                                 \"pid\":1,\"tid\":{},\"ts\":{},\"dur\":{},\
                                 \"args\":{{\"client\":{},\"cseq\":{}}}}}",
                                rec.key % 1_000_000,
                                start.0,
                                end.0 - start.0,
                                rec.client(),
                                rec.cseq()
                            ),
                        );
                    }
                }
            }
            if !sliced {
                let (name, a, b) = SPAN_DELTAS[SPAN_DELTAS.len() - 1];
                if let (Some(start), Some(end)) = (rec.at[a.idx()], rec.at[b.idx()]) {
                    if end >= start {
                        emit(
                            &mut out,
                            &format!(
                                "{{\"name\":\"{name}\",\"cat\":\"update\",\"ph\":\"X\",\
                                 \"pid\":1,\"tid\":{},\"ts\":{},\"dur\":{},\
                                 \"args\":{{\"client\":{},\"cseq\":{}}}}}",
                                rec.key % 1_000_000,
                                start.0,
                                end.0 - start.0,
                                rec.client(),
                                rec.cseq()
                            ),
                        );
                    }
                }
            }
        }
        out.push_str("\n]\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_records_nothing() {
        let mut t = Tracer::disabled();
        t.record(
            Time(1),
            TraceKind::MsgSend {
                from: 0,
                to: 1,
                len: 8,
            },
        );
        assert!(t
            .mark(Time(2), 0, span_key(1, 1), SpanPhase::Confirm)
            .is_none());
        assert_eq!(t.recorder().len(), 0);
        assert!(t.completed_spans().is_empty());
    }

    #[test]
    fn ring_buffer_keeps_tail_and_counts_drops() {
        let mut r = FlightRecorder::new(3);
        for i in 0..5u64 {
            r.push(TraceEvent {
                at: Time(i),
                kind: TraceKind::Mark {
                    pid: 0,
                    label: "x",
                    value: i,
                },
            });
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.dropped(), 2);
        let times: Vec<u64> = r.events().map(|e| e.at.0).collect();
        assert_eq!(times, vec![2, 3, 4]);
        let tail: Vec<u64> = r.tail(2).map(|e| e.at.0).collect();
        assert_eq!(tail, vec![3, 4]);
    }

    #[test]
    fn span_phases_first_wins_and_complete_on_confirm() {
        let mut t = Tracer::default();
        t.enable(64);
        let key = span_key(7, 42);
        assert!(t.mark(Time(10), 1, key, SpanPhase::Submit).is_none());
        assert!(t.mark(Time(20), 2, key, SpanPhase::Recv).is_none());
        // A slower replica's re-mark must not move the phase time.
        assert!(t.mark(Time(25), 3, key, SpanPhase::Recv).is_none());
        assert!(t.mark(Time(30), 2, key, SpanPhase::Preorder).is_none());
        assert!(t.mark(Time(40), 2, key, SpanPhase::Order).is_none());
        assert!(t.mark(Time(50), 2, key, SpanPhase::Execute).is_none());
        let rec = t.mark(Time(60), 1, key, SpanPhase::Confirm).unwrap();
        assert_eq!(rec.client(), 7);
        assert_eq!(rec.cseq(), 42);
        let deltas = rec.phase_deltas();
        assert_eq!(
            deltas,
            vec![
                ("span.overlay_in_us", 10),
                ("span.preorder_us", 10),
                ("span.order_us", 10),
                ("span.execute_us", 10),
                ("span.confirm_us", 10),
                ("span.total_us", 50),
            ]
        );
        assert_eq!(t.open_span_count(), 0);
        assert_eq!(t.completed_spans().len(), 1);
    }

    #[test]
    fn partial_span_reports_only_known_deltas() {
        let mut t = Tracer::default();
        t.enable(64);
        let key = span_key(3, 9);
        t.mark(Time(5), 0, key, SpanPhase::Execute);
        let rec = t.mark(Time(9), 0, key, SpanPhase::Confirm).unwrap();
        assert_eq!(rec.phase_deltas(), vec![("span.confirm_us", 4)]);
    }

    #[test]
    fn span_key_round_trips() {
        let rec = SpanRecord {
            key: span_key(1000, 123_456),
            at: [None; SPAN_PHASES],
        };
        assert_eq!(rec.client(), 1000);
        assert_eq!(rec.cseq(), 123_456);
    }

    #[test]
    fn histogram_buckets_are_consistent() {
        // Every bucket's lo bound maps back to that bucket, and values are
        // never placed below their bucket's lo. The largest reachable index
        // is bucket_index(u64::MAX) = 1919.
        assert_eq!(bucket_index(u64::MAX), 1919);
        for idx in 0..=1919usize {
            let lo = bucket_lo(idx);
            assert_eq!(bucket_index(lo), idx, "lo of bucket {idx}");
        }
        for v in [0u64, 1, 31, 32, 63, 64, 100, 1_000, 123_456, u64::MAX / 2] {
            let idx = bucket_index(v);
            assert!(bucket_lo(idx) <= v);
            assert!(v < bucket_lo(idx + 1), "v={v} idx={idx}");
        }
    }

    #[test]
    fn histogram_percentiles_close_to_exact() {
        // Uniform 1..=100_000: bucketed percentiles must be within a few
        // percent of the exact order statistics.
        let mut h = Histogram::new();
        let mut exact: Vec<u64> = Vec::new();
        for v in 1..=100_000u64 {
            h.observe(v);
            exact.push(v);
        }
        assert_eq!(h.count(), 100_000);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 100_000);
        for pct in [1.0, 10.0, 50.0, 90.0, 99.0, 99.9] {
            let approx = h.percentile(pct);
            let rank = ((pct / 100.0) * exact.len() as f64).ceil().max(1.0) as usize - 1;
            let truth = exact[rank] as f64;
            let rel = (approx - truth).abs() / truth;
            assert!(rel < 0.03, "pct={pct} approx={approx} truth={truth}");
        }
        assert_eq!(h.percentile(0.0), 1.0);
        assert_eq!(h.percentile(100.0), 100_000.0);
        let mean = h.mean();
        assert!((mean - 50_000.5).abs() < 1e-6, "mean={mean}");
    }

    #[test]
    fn histogram_merge_matches_combined() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut both = Histogram::new();
        for v in 0..1000u64 {
            a.observe(v * 3);
            both.observe(v * 3);
        }
        for v in 0..500u64 {
            b.observe(v * 7 + 1);
            both.observe(v * 7 + 1);
        }
        a.merge(&b);
        assert_eq!(a.count(), both.count());
        assert_eq!(a.min(), both.min());
        assert_eq!(a.max(), both.max());
        for pct in [5.0, 50.0, 95.0] {
            assert_eq!(a.percentile(pct), both.percentile(pct));
        }
        // Merging into an empty histogram copies.
        let mut empty = Histogram::new();
        empty.merge(&both);
        assert_eq!(empty.count(), both.count());
        assert_eq!(empty.min(), both.min());
    }

    #[test]
    fn chrome_trace_is_wellformed_array() {
        let mut t = Tracer::default();
        t.enable(64);
        t.record(
            Time(100),
            TraceKind::MsgSend {
                from: 0,
                to: 1,
                len: 16,
            },
        );
        let key = span_key(2, 1);
        t.mark(Time(100), 0, key, SpanPhase::Submit);
        t.mark(Time(300), 1, key, SpanPhase::Confirm);
        let json = t.chrome_trace(&|pid| format!("proc-{pid}"));
        assert!(json.starts_with('['));
        assert!(json.trim_end().ends_with(']'));
        assert!(json.contains("\"ph\":\"M\""));
        assert!(json.contains("\"ph\":\"i\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("proc-0"));
        // No empty elements / trailing commas.
        assert!(!json.contains(",,"));
        assert!(!json.contains(",]"));
        assert!(!json.contains(",\n]"));
    }

    #[test]
    fn jsonl_one_object_per_line() {
        let mut t = Tracer::default();
        t.enable(64);
        t.record(Time(1), TraceKind::Crash { pid: 3 });
        let key = span_key(1, 1);
        t.mark(Time(2), 0, key, SpanPhase::Submit);
        t.mark(Time(8), 0, key, SpanPhase::Confirm);
        let jsonl = t.events_jsonl(&|pid| format!("p{pid}"));
        let lines: Vec<&str> = jsonl.lines().collect();
        // crash + two phase marks + one span line
        assert_eq!(lines.len(), 4);
        for line in lines {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        }
        assert!(jsonl.contains("\"ev\":\"span\""));
        assert!(jsonl.contains("\"submit_us\":2"));
        assert!(jsonl.contains("\"confirm_us\":8"));
    }

    #[test]
    fn dump_tail_is_human_readable() {
        let mut t = Tracer::default();
        t.enable(8);
        t.record(
            Time(1_500_000),
            TraceKind::ViewChange {
                replica: 2,
                view: 3,
            },
        );
        let dump = t.dump_tail(10, &|pid| format!("replica-{pid}"));
        assert!(dump.contains("view_change"));
        assert!(dump.contains("replica-2"));
        assert!(dump.contains("view 3"));
    }
}
