//! Canonical wire encoding helpers.
//!
//! Every signed protocol message needs a canonical byte representation;
//! these little-endian, length-prefixed readers/writers are shared by the
//! Spines, Prime and SCADA codecs.

use bytes::Bytes;

/// Error decoding a wire message.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ended before the value was complete.
    Truncated,
    /// A tag or enum discriminant had an unknown value.
    BadTag(u8),
    /// A length prefix exceeded the sanity limit.
    OversizedLength(u64),
    /// Trailing bytes remained after decoding finished.
    TrailingBytes,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "message truncated"),
            WireError::BadTag(t) => write!(f, "unknown tag {t}"),
            WireError::OversizedLength(n) => write!(f, "oversized length {n}"),
            WireError::TrailingBytes => write!(f, "trailing bytes after message"),
        }
    }
}

impl std::error::Error for WireError {}

/// Maximum length accepted for any length-prefixed field (16 MiB).
pub const MAX_FIELD_LEN: u64 = 16 * 1024 * 1024;

/// Serializes values into a growable buffer.
#[derive(Clone, Debug, Default)]
pub struct WireWriter {
    buf: Vec<u8>,
}

impl WireWriter {
    /// Creates an empty writer.
    pub fn new() -> WireWriter {
        WireWriter::default()
    }

    /// Creates a writer with preallocated capacity.
    pub fn with_capacity(capacity: usize) -> WireWriter {
        WireWriter {
            buf: Vec::with_capacity(capacity),
        }
    }

    /// Appends a byte.
    pub fn u8(&mut self, v: u8) -> &mut Self {
        self.buf.push(v);
        self
    }

    /// Appends a little-endian u16.
    pub fn u16(&mut self, v: u16) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Appends a little-endian u32.
    pub fn u32(&mut self, v: u32) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Appends a little-endian u64.
    pub fn u64(&mut self, v: u64) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Appends a little-endian i64.
    pub fn i64(&mut self, v: i64) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Appends an f64 (IEEE-754 bits, little-endian).
    pub fn f64(&mut self, v: f64) -> &mut Self {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
        self
    }

    /// Appends a bool as one byte.
    pub fn bool(&mut self, v: bool) -> &mut Self {
        self.u8(v as u8)
    }

    /// Appends fixed-size raw bytes (no length prefix).
    pub fn raw(&mut self, v: &[u8]) -> &mut Self {
        self.buf.extend_from_slice(v);
        self
    }

    /// Appends length-prefixed bytes.
    pub fn bytes(&mut self, v: &[u8]) -> &mut Self {
        self.u32(v.len() as u32);
        self.buf.extend_from_slice(v);
        self
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn string(&mut self, v: &str) -> &mut Self {
        self.bytes(v.as_bytes())
    }

    /// Consumes the writer, returning the encoded bytes.
    pub fn finish(self) -> Bytes {
        Bytes::from(self.buf)
    }

    /// Consumes the writer, returning the underlying vector (no copy).
    pub fn into_vec(self) -> Vec<u8> {
        self.buf
    }

    /// Clears the buffer, retaining its capacity for reuse.
    pub fn clear(&mut self) {
        self.buf.clear();
    }

    /// Zeroes the last `n` bytes in place (e.g. a trailing signature field
    /// when computing canonical signing bytes without re-encoding).
    ///
    /// # Panics
    ///
    /// Panics if fewer than `n` bytes have been written.
    pub fn zero_tail(&mut self, n: usize) -> &mut Self {
        let len = self.buf.len();
        assert!(len >= n, "zero_tail({n}) on {len}-byte buffer");
        self.buf[len - n..].fill(0);
        self
    }

    /// Borrow the bytes written so far.
    pub fn as_slice(&self) -> &[u8] {
        &self.buf
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing was written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

/// Deserializes values from a byte slice.
#[derive(Clone, Debug)]
pub struct WireReader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    /// Wraps a byte slice for reading.
    pub fn new(data: &'a [u8]) -> WireReader<'a> {
        WireReader { data, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.pos + n > self.data.len() {
            return Err(WireError::Truncated);
        }
        let slice = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian u16.
    pub fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    /// Reads a little-endian u32.
    pub fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a little-endian u64.
    pub fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a little-endian i64.
    pub fn i64(&mut self) -> Result<i64, WireError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads an f64.
    pub fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a bool (strictly 0 or 1).
    pub fn bool(&mut self) -> Result<bool, WireError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(WireError::BadTag(other)),
        }
    }

    /// Reads `n` raw bytes.
    pub fn raw(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        self.take(n)
    }

    /// Reads a fixed-size array.
    pub fn array<const N: usize>(&mut self) -> Result<[u8; N], WireError> {
        Ok(self.take(N)?.try_into().unwrap())
    }

    /// Reads length-prefixed bytes.
    pub fn bytes(&mut self) -> Result<&'a [u8], WireError> {
        let len = self.u32()? as u64;
        if len > MAX_FIELD_LEN {
            return Err(WireError::OversizedLength(len));
        }
        self.take(len as usize)
    }

    /// Reads a length-prefixed UTF-8 string (lossy on invalid UTF-8).
    pub fn string(&mut self) -> Result<String, WireError> {
        Ok(String::from_utf8_lossy(self.bytes()?).into_owned())
    }

    /// Remaining unread byte count.
    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    /// Errors unless the buffer was fully consumed.
    pub fn expect_end(&self) -> Result<(), WireError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(WireError::TrailingBytes)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_types() {
        let mut w = WireWriter::new();
        w.u8(7)
            .u16(65535)
            .u32(123456)
            .u64(u64::MAX)
            .i64(-42)
            .f64(3.5)
            .bool(true)
            .bytes(b"hello")
            .string("world")
            .raw(&[1, 2, 3]);
        let buf = w.finish();
        let mut r = WireReader::new(&buf);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u16().unwrap(), 65535);
        assert_eq!(r.u32().unwrap(), 123456);
        assert_eq!(r.u64().unwrap(), u64::MAX);
        assert_eq!(r.i64().unwrap(), -42);
        assert_eq!(r.f64().unwrap(), 3.5);
        assert!(r.bool().unwrap());
        assert_eq!(r.bytes().unwrap(), b"hello");
        assert_eq!(r.string().unwrap(), "world");
        assert_eq!(r.raw(3).unwrap(), &[1, 2, 3]);
        r.expect_end().unwrap();
    }

    #[test]
    fn truncated_errors() {
        let mut w = WireWriter::new();
        w.u64(1);
        let buf = w.finish();
        let mut r = WireReader::new(&buf[..4]);
        assert_eq!(r.u64(), Err(WireError::Truncated));
    }

    #[test]
    fn bad_bool() {
        let mut r = WireReader::new(&[2]);
        assert_eq!(r.bool(), Err(WireError::BadTag(2)));
    }

    #[test]
    fn oversized_length_rejected() {
        let mut w = WireWriter::new();
        w.u32(u32::MAX);
        let buf = w.finish();
        let mut r = WireReader::new(&buf);
        assert_eq!(r.bytes(), Err(WireError::OversizedLength(u32::MAX as u64)));
    }

    #[test]
    fn trailing_bytes_detected() {
        let r = WireReader::new(&[1, 2]);
        assert_eq!(r.expect_end(), Err(WireError::TrailingBytes));
    }

    #[test]
    fn clear_zero_tail_into_vec() {
        let mut w = WireWriter::new();
        w.u8(1).raw(&[0xff; 4]);
        w.zero_tail(3);
        assert_eq!(w.as_slice(), &[1, 0xff, 0, 0, 0]);
        w.clear();
        assert!(w.is_empty());
        w.u16(0x0201);
        assert_eq!(w.into_vec(), vec![1, 2]);
    }

    #[test]
    fn array_read() {
        let mut r = WireReader::new(&[9, 8, 7, 6]);
        let a: [u8; 4] = r.array().unwrap();
        assert_eq!(a, [9, 8, 7, 6]);
    }
}
