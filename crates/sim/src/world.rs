//! The deterministic discrete-event world: processes, links, timers.
//!
//! `World` replaces the paper's physical testbed. Protocol logic runs as
//! event-driven state machines (the [`Process`] trait); the network model
//! applies per-link latency, jitter, loss and bandwidth queueing, and can be
//! reconfigured mid-run to emulate partitions, site disconnections and
//! denial-of-service attacks. A fixed RNG seed makes every run reproducible.

use crate::clock::Clock;
use crate::metrics::Metrics;
use crate::time::{Span, Time};
use crate::trace::{SpanPhase, TraceKind, Tracer};
use bytes::Bytes;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, HashSet};
use std::sync::Arc;

/// Identifies a process within a [`World`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ProcessId(pub u32);

impl std::fmt::Display for ProcessId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// Handle to a pending timer, used for cancellation.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct TimerId(u64);

impl TimerId {
    /// Builds a handle from its raw value (for alternative substrates that
    /// mint their own timer ids).
    pub fn from_raw(raw: u64) -> TimerId {
        TimerId(raw)
    }

    /// The raw id value.
    pub fn raw(self) -> u64 {
        self.0
    }
}

/// An event-driven process (protocol state machine).
///
/// Implementations must be deterministic given the same event sequence and
/// RNG draws; all side effects go through the [`Context`]. `Send` is
/// required so the same state machines can be hosted on OS threads by the
/// real-clock runtime.
pub trait Process: Send {
    /// Called once when the process is added (or restarted).
    fn on_start(&mut self, _ctx: &mut Context<'_>) {}

    /// Called when a message arrives.
    fn on_message(&mut self, ctx: &mut Context<'_>, from: ProcessId, bytes: &Bytes);

    /// Called when a timer set via [`Context::set_timer`] fires.
    fn on_timer(&mut self, _ctx: &mut Context<'_>, _tag: u64) {}
}

/// Configuration of a directed network link.
#[derive(Clone, Copy, Debug)]
pub struct LinkConfig {
    /// Propagation delay.
    pub latency: Span,
    /// Uniform random extra delay in `[0, jitter]`.
    pub jitter: Span,
    /// Probability in `[0, 1]` that a message is dropped.
    pub loss: f64,
    /// Probability in `[0, 1]` that a delivered message has one byte
    /// flipped (bit errors / tampering en route; authenticated protocols
    /// must detect and recover).
    pub corrupt: f64,
    /// Probability in `[0, 1]` that a message is delivered twice, the
    /// copy with an independent jitter draw (route flaps / replayed
    /// frames; protocols must deduplicate).
    pub dup: f64,
    /// Transmission rate; `None` means infinite (no queueing).
    pub bandwidth_bps: Option<u64>,
    /// Maximum queueing delay before tail drop (router buffer size in
    /// time units). Messages that would wait longer are dropped.
    pub max_queue: Span,
}

impl LinkConfig {
    /// A LAN-like link: 0.5 ms latency, small jitter, lossless, 1 Gbps.
    pub fn lan() -> LinkConfig {
        LinkConfig {
            latency: Span::micros(500),
            jitter: Span::micros(100),
            loss: 0.0,
            corrupt: 0.0,
            dup: 0.0,
            bandwidth_bps: Some(1_000_000_000),
            max_queue: Span::millis(200),
        }
    }

    /// A WAN link with the given one-way latency in milliseconds (100 Mbps).
    pub fn wan(latency_ms: u64) -> LinkConfig {
        LinkConfig {
            latency: Span::millis(latency_ms),
            jitter: Span::micros(500 * latency_ms.min(10)),
            loss: 0.0,
            corrupt: 0.0,
            dup: 0.0,
            bandwidth_bps: Some(100_000_000),
            max_queue: Span::millis(200),
        }
    }

    /// An intra-host link (process to co-located daemon).
    pub fn local() -> LinkConfig {
        LinkConfig {
            latency: Span::micros(50),
            jitter: Span::ZERO,
            loss: 0.0,
            corrupt: 0.0,
            dup: 0.0,
            bandwidth_bps: None,
            max_queue: Span::millis(200),
        }
    }

    /// Returns a copy with the given loss probability.
    pub fn with_loss(mut self, loss: f64) -> LinkConfig {
        self.loss = loss;
        self
    }

    /// Returns a copy with the given bandwidth.
    pub fn with_bandwidth(mut self, bps: u64) -> LinkConfig {
        self.bandwidth_bps = Some(bps);
        self
    }

    /// Returns a copy with the given router buffer depth (maximum
    /// queueing delay before tail drop). Deep buffers turn saturation
    /// into latency instead of loss — the scaling experiments use this
    /// so a congested group degrades gracefully rather than dropping
    /// the very ordering frames it needs to make progress.
    pub fn with_max_queue(mut self, depth: Span) -> LinkConfig {
        self.max_queue = depth;
        self
    }

    /// Returns a copy with the given corruption probability.
    pub fn with_corruption(mut self, corrupt: f64) -> LinkConfig {
        self.corrupt = corrupt;
        self
    }

    /// Returns a copy with the given duplication probability.
    pub fn with_dup(mut self, dup: f64) -> LinkConfig {
        self.dup = dup;
        self
    }

    /// Returns a copy with the given jitter.
    pub fn with_jitter(mut self, jitter: Span) -> LinkConfig {
        self.jitter = jitter;
        self
    }
}

/// A thunk producing a fresh state machine for a restarted process slot.
/// `Fn` (not `FnOnce`) so one scheduled op can be cloned across substrates,
/// and `Send + Sync` so the real-clock runtime can ship it to the worker
/// thread owning the actor.
pub type SpawnFn = Arc<dyn Fn() -> Box<dyn Process> + Send + Sync>;

/// A substrate-agnostic control-plane action: the attack/defense vocabulary
/// (crash, restart-as-recovering, link partition, link degradation) as
/// plain data rather than simulator closures, so the same scheduled plan
/// can be applied by the discrete-event [`World`] (via
/// [`World::apply_control`]) or by the real-clock `spire-rt` runtime at
/// wall-clock time.
#[derive(Clone)]
pub enum ControlOp {
    /// Crash a process: it stops receiving messages and timers.
    Crash(ProcessId),
    /// Restart a process slot with a freshly spawned state machine.
    Restart(ProcessId, SpawnFn),
    /// Bring both directions of a link up or down.
    SetLinkUp(ProcessId, ProcessId, bool),
    /// Replace both directions of a link's configuration.
    SetLinkConfig(ProcessId, ProcessId, LinkConfig),
    /// Increment a named counter (control-plane bookkeeping).
    Count(String, u64),
}

impl std::fmt::Debug for ControlOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ControlOp::Crash(pid) => write!(f, "Crash({pid})"),
            ControlOp::Restart(pid, _) => write!(f, "Restart({pid})"),
            ControlOp::SetLinkUp(a, b, up) => write!(f, "SetLinkUp({a}, {b}, {up})"),
            ControlOp::SetLinkConfig(a, b, _) => write!(f, "SetLinkConfig({a}, {b})"),
            ControlOp::Count(name, delta) => write!(f, "Count({name}, {delta})"),
        }
    }
}

struct LinkState {
    cfg: LinkConfig,
    up: bool,
    /// Earliest time the link's transmitter is free (bandwidth queueing).
    next_free: Time,
}

struct Slot {
    proc: Option<Box<dyn Process>>,
    name: String,
    up: bool,
    generation: u64,
    /// Modeled single-threaded CPU: time to handle one inbound message.
    /// `None` means infinitely fast (the default — pure network model).
    service: Option<Span>,
    /// When the modeled CPU frees up; deliveries queue behind it.
    busy_until: Time,
}

enum EventKind {
    Start {
        to: ProcessId,
        generation: u64,
    },
    Deliver {
        to: ProcessId,
        from: ProcessId,
        bytes: Bytes,
    },
    /// A delivery that already paid its service time at the modeled CPU
    /// (see [`World::set_service_time`]); executes immediately on pop.
    Execute {
        to: ProcessId,
        from: ProcessId,
        bytes: Bytes,
    },
    Timer {
        to: ProcessId,
        generation: u64,
        timer: TimerId,
        tag: u64,
    },
    Control(u64),
}

struct QueuedEvent {
    at: Time,
    seq: u64,
    kind: EventKind,
}

impl PartialEq for QueuedEvent {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for QueuedEvent {}
impl PartialOrd for QueuedEvent {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for QueuedEvent {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

type ControlFn = Box<dyn FnOnce(&mut World)>;

/// The substrate services a [`Context`] delegates to.
///
/// [`World`] implements this over the discrete-event queue and virtual
/// time; the real-clock runtime (`spire-rt`) implements it over per-worker
/// mailboxes, timer wheels and a monotonic [`Clock`]. Actor code only sees
/// [`Context`], so the same state machines run on either substrate.
pub trait Backend {
    /// Current time (virtual or monotonic, measured from substrate start).
    fn now(&self) -> Time;

    /// Sends `bytes` from `from` to `to` over the configured link.
    fn send_from(&mut self, from: ProcessId, to: ProcessId, bytes: Bytes);

    /// Sets a timer for `me` that fires after `delay` with the given tag.
    fn set_timer(&mut self, me: ProcessId, delay: Span, tag: u64) -> TimerId;

    /// Cancels a pending timer (no-op if it already fired).
    fn cancel_timer(&mut self, me: ProcessId, timer: TimerId);

    /// Deterministic RNG (per-world in the sim, per-worker in the runtime).
    fn rng(&mut self) -> &mut StdRng;

    /// Increments a named counter metric.
    fn count(&mut self, name: &str, delta: u64);

    /// Records a named time-series sample at the current time.
    fn record(&mut self, name: &str, value: f64);

    /// Records one value into a named log-bucketed histogram.
    fn observe(&mut self, name: &str, value: u64);

    /// Whether structured tracing is enabled.
    fn tracing_enabled(&self) -> bool {
        false
    }

    /// Records a trace event at the current time (no-op when disabled).
    fn trace(&mut self, kind: TraceKind) {
        let _ = kind;
    }

    /// Marks a causal-span phase for process `pid` at the current time.
    fn span_mark(&mut self, pid: u32, key: u64, phase: SpanPhase) {
        let _ = (pid, key, phase);
    }
}

/// The deterministic discrete-event simulation world.
///
/// # Examples
///
/// ```
/// use spire_sim::{World, Process, Context, ProcessId, Span, LinkConfig};
/// use bytes::Bytes;
///
/// struct Echo;
/// impl Process for Echo {
///     fn on_message(&mut self, ctx: &mut Context<'_>, from: ProcessId, bytes: &Bytes) {
///         ctx.send(from, bytes.clone());
///     }
/// }
/// struct Probe;
/// impl Process for Probe {
///     fn on_start(&mut self, ctx: &mut Context<'_>) {
///         ctx.send(ProcessId(0), Bytes::from_static(b"ping"));
///     }
///     fn on_message(&mut self, ctx: &mut Context<'_>, _from: ProcessId, _bytes: &Bytes) {
///         ctx.count("pongs", 1);
///     }
/// }
///
/// let mut world = World::new(7);
/// let echo = world.add_process("echo", Box::new(Echo));
/// let probe = world.add_process("probe", Box::new(Probe));
/// world.add_link(echo, probe, LinkConfig::lan());
/// world.run_for(Span::secs(1));
/// assert_eq!(world.metrics().counter("pongs"), 1);
/// ```
pub struct World {
    clock: Clock,
    seed: u64,
    seq: u64,
    queue: BinaryHeap<Reverse<QueuedEvent>>,
    slots: Vec<Slot>,
    links: HashMap<(u32, u32), LinkState>,
    rng: StdRng,
    metrics: Metrics,
    next_timer: u64,
    cancelled: HashSet<u64>,
    controls: HashMap<u64, ControlFn>,
    next_control: u64,
    /// Optional cap on queue size as a runaway guard.
    max_queue: usize,
    tracer: Tracer,
}

impl World {
    /// Creates a world seeded for reproducibility.
    pub fn new(seed: u64) -> World {
        World {
            clock: Clock::virtual_at_zero(),
            seed,
            seq: 0,
            queue: BinaryHeap::new(),
            slots: Vec::new(),
            links: HashMap::new(),
            rng: StdRng::seed_from_u64(seed),
            metrics: Metrics::new(),
            next_timer: 0,
            cancelled: HashSet::new(),
            controls: HashMap::new(),
            next_control: 0,
            max_queue: 50_000_000,
            tracer: Tracer::disabled(),
        }
    }

    /// Turns on structured tracing with a flight recorder of `cap` events.
    pub fn enable_tracing(&mut self, cap: usize) {
        self.tracer.enable(cap);
    }

    /// The tracing front end (flight recorder, spans, exporters).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Mutable tracer access (enable, overlay marking).
    pub fn tracer_mut(&mut self) -> &mut Tracer {
        &mut self.tracer
    }

    /// Records a trace event at the current time (no-op when disabled).
    #[inline]
    pub fn trace(&mut self, kind: TraceKind) {
        self.tracer.record(self.clock.now(), kind);
    }

    /// Marks a span phase at the current time; on completion the per-phase
    /// deltas are fed into the metric histograms (`span.*_us`).
    #[inline]
    pub fn span_mark(&mut self, pid: u32, key: u64, phase: SpanPhase) {
        if let Some(rec) = self.tracer.mark(self.clock.now(), pid, key, phase) {
            for (name, delta) in rec.phase_deltas() {
                self.metrics.observe(name, delta);
            }
        }
    }

    /// Human-readable dump of the last `n` trace events, with process names.
    pub fn trace_dump_tail(&self, n: usize) -> String {
        self.tracer.dump_tail(n, &|pid| self.pid_name(pid))
    }

    /// JSONL export of trace events and completed spans.
    pub fn events_jsonl(&self) -> String {
        self.tracer.events_jsonl(&|pid| self.pid_name(pid))
    }

    /// Chrome `trace_event` JSON export (chrome://tracing / Perfetto).
    pub fn chrome_trace(&self) -> String {
        self.tracer.chrome_trace(&|pid| self.pid_name(pid))
    }

    fn pid_name(&self, pid: u32) -> String {
        self.slots
            .get(pid as usize)
            .map(|s| s.name.clone())
            .unwrap_or_else(|| format!("p{pid}"))
    }

    /// Current virtual time.
    pub fn now(&self) -> Time {
        self.clock.now()
    }

    /// The RNG seed the world was created with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Adds a process; its `on_start` runs at the current time.
    pub fn add_process(&mut self, name: &str, proc: Box<dyn Process>) -> ProcessId {
        let id = ProcessId(self.slots.len() as u32);
        self.slots.push(Slot {
            proc: Some(proc),
            name: name.to_string(),
            up: true,
            generation: 0,
            service: None,
            busy_until: Time(0),
        });
        let now = self.clock.now();
        self.push(
            now,
            EventKind::Start {
                to: id,
                generation: 0,
            },
        );
        id
    }

    /// The human-readable name of a process.
    pub fn process_name(&self, id: ProcessId) -> &str {
        &self.slots[id.0 as usize].name
    }

    /// Whether the process is currently up.
    pub fn is_up(&self, id: ProcessId) -> bool {
        self.slots[id.0 as usize].up
    }

    /// Models a single-threaded CPU for the process: each inbound message
    /// occupies it for `per_msg` before the handler runs, and deliveries
    /// arriving while it is busy queue behind it. This is the graceful
    /// saturation ceiling the scaling experiments lean on — a replica that
    /// can verify/order only so many messages per second falls behind in
    /// *latency*, never by dropping protocol frames. `Span::ZERO` removes
    /// the model (the default: an infinitely fast host).
    pub fn set_service_time(&mut self, id: ProcessId, per_msg: Span) {
        let slot = &mut self.slots[id.0 as usize];
        slot.service = if per_msg == Span::ZERO {
            None
        } else {
            Some(per_msg)
        };
    }

    /// Number of processes ever added.
    pub fn process_count(&self) -> usize {
        self.slots.len()
    }

    /// Crashes a process: it stops receiving messages and timers.
    pub fn crash(&mut self, id: ProcessId) {
        let slot = &mut self.slots[id.0 as usize];
        slot.up = false;
        slot.generation += 1;
        self.tracer
            .record(self.clock.now(), TraceKind::Crash { pid: id.0 });
    }

    /// Restarts a process with a fresh state machine.
    ///
    /// The generation counter invalidates timers set by the previous
    /// incarnation; in-flight messages are still delivered (as they would be
    /// to a rebooted host on a real network).
    pub fn restart(&mut self, id: ProcessId, proc: Box<dyn Process>) {
        let now = self.clock.now();
        let generation = {
            let slot = &mut self.slots[id.0 as usize];
            slot.proc = Some(proc);
            slot.up = true;
            slot.generation += 1;
            // A rebooted host starts with an idle CPU.
            slot.busy_until = now;
            slot.generation
        };
        self.tracer
            .record(self.clock.now(), TraceKind::Restart { pid: id.0 });
        self.push(now, EventKind::Start { to: id, generation });
    }

    /// Adds a bidirectional link between `a` and `b`.
    pub fn add_link(&mut self, a: ProcessId, b: ProcessId, cfg: LinkConfig) {
        self.add_link_directed(a, b, cfg);
        self.add_link_directed(b, a, cfg);
    }

    /// Adds a directed link from `a` to `b`.
    pub fn add_link_directed(&mut self, a: ProcessId, b: ProcessId, cfg: LinkConfig) {
        self.links.insert(
            (a.0, b.0),
            LinkState {
                cfg,
                up: true,
                next_free: Time::ZERO,
            },
        );
    }

    /// Returns true if a (directed) link exists.
    pub fn has_link(&self, a: ProcessId, b: ProcessId) -> bool {
        self.links.contains_key(&(a.0, b.0))
    }

    /// Brings both directions of a link up or down (partition injection).
    pub fn set_link_up(&mut self, a: ProcessId, b: ProcessId, up: bool) {
        for key in [(a.0, b.0), (b.0, a.0)] {
            if let Some(link) = self.links.get_mut(&key) {
                link.up = up;
            }
        }
    }

    /// Replaces the configuration of both directions of a link (degradation
    /// injection, e.g. DoS-induced loss and queueing).
    pub fn set_link_config(&mut self, a: ProcessId, b: ProcessId, cfg: LinkConfig) {
        let now = self.clock.now();
        for key in [(a.0, b.0), (b.0, a.0)] {
            if let Some(link) = self.links.get_mut(&key) {
                link.cfg = cfg;
                // A reconfigured link starts with an empty transmit queue
                // (the old backlog is considered dropped by the old path).
                link.next_free = now;
            }
        }
    }

    /// Applies one substrate-agnostic control-plane action immediately.
    /// The real-clock runtime applies the same [`ControlOp`] vocabulary at
    /// wall-clock time; here each op maps onto the simulator's native
    /// crash/restart/link machinery.
    pub fn apply_control(&mut self, op: ControlOp) {
        match op {
            ControlOp::Crash(pid) => self.crash(pid),
            ControlOp::Restart(pid, spawn) => self.restart(pid, spawn()),
            ControlOp::SetLinkUp(a, b, up) => self.set_link_up(a, b, up),
            ControlOp::SetLinkConfig(a, b, cfg) => self.set_link_config(a, b, cfg),
            ControlOp::Count(name, delta) => self.metrics.count(&name, delta),
        }
    }

    /// Schedules a control action (attack injection, recovery, topology
    /// change) to run at virtual time `at`.
    pub fn schedule_control<F>(&mut self, at: Time, f: F)
    where
        F: FnOnce(&mut World) + 'static,
    {
        let id = self.next_control;
        self.next_control += 1;
        self.controls.insert(id, Box::new(f));
        let at = at.max(self.clock.now());
        self.push(at, EventKind::Control(id));
    }

    /// Injects a message directly (bypassing links); for tests and fault
    /// injection.
    pub fn inject_message(&mut self, at: Time, from: ProcessId, to: ProcessId, bytes: Bytes) {
        let at = at.max(self.clock.now());
        self.push(at, EventKind::Deliver { to, from, bytes });
    }

    /// Access to collected metrics.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Mutable access to metrics (e.g. for harness-recorded values).
    pub fn metrics_mut(&mut self) -> &mut Metrics {
        &mut self.metrics
    }

    /// Runs until the queue is empty or `deadline` is passed.
    pub fn run_until(&mut self, deadline: Time) {
        while let Some(Reverse(ev)) = self.queue.peek() {
            if ev.at > deadline {
                break;
            }
            self.step();
        }
        self.clock.advance_to(deadline);
    }

    /// Runs for `span` of virtual time from now.
    pub fn run_for(&mut self, span: Span) {
        let deadline = self.clock.now() + span;
        self.run_until(deadline);
    }

    /// Processes a single event; returns false if the queue is empty.
    pub fn step(&mut self) -> bool {
        let Some(Reverse(ev)) = self.queue.pop() else {
            return false;
        };
        debug_assert!(ev.at >= self.clock.now(), "time went backwards");
        self.clock.advance_to(ev.at);
        match ev.kind {
            EventKind::Start { to, generation } => {
                self.dispatch(to, Some(generation), |proc, ctx| proc.on_start(ctx));
            }
            EventKind::Deliver { to, from, bytes } => {
                let idx = to.0 as usize;
                if idx < self.slots.len() && self.slots[idx].up {
                    // Modeled CPU: serialize message handling through the
                    // process's single server. The handler runs when the
                    // message *finishes* service; deliveries arriving while
                    // the CPU is busy queue behind it (an M/D/1 mailbox —
                    // saturation shows up as latency, never as loss).
                    if let Some(per_msg) = self.slots[idx].service {
                        let now = self.clock.now();
                        let start = self.slots[idx].busy_until.max(now);
                        if start > now {
                            self.metrics.count("sim.cpu_queued", 1);
                        }
                        let done = start + per_msg;
                        self.slots[idx].busy_until = done;
                        self.push(done, EventKind::Execute { to, from, bytes });
                    } else {
                        self.deliver_now(to, from, bytes);
                    }
                } else {
                    self.metrics.count("sim.dropped_to_down_process", 1);
                }
            }
            EventKind::Execute { to, from, bytes } => {
                let idx = to.0 as usize;
                if idx < self.slots.len() && self.slots[idx].up {
                    self.deliver_now(to, from, bytes);
                } else {
                    self.metrics.count("sim.dropped_to_down_process", 1);
                }
            }
            EventKind::Timer {
                to,
                generation,
                timer,
                tag,
            } => {
                if self.cancelled.remove(&timer.0) {
                    return true;
                }
                self.tracer
                    .record(self.clock.now(), TraceKind::TimerFire { pid: to.0, tag });
                self.dispatch(to, Some(generation), |proc, ctx| proc.on_timer(ctx, tag));
            }
            EventKind::Control(id) => {
                if let Some(f) = self.controls.remove(&id) {
                    f(self);
                }
            }
        }
        true
    }

    fn deliver_now(&mut self, to: ProcessId, from: ProcessId, bytes: Bytes) {
        self.metrics.count("sim.delivered", 1);
        if self.tracer.enabled() {
            self.tracer.record(
                self.clock.now(),
                TraceKind::MsgRecv {
                    to: to.0,
                    from: from.0,
                    len: bytes.len() as u32,
                },
            );
        }
        self.dispatch(to, None, |proc, ctx| proc.on_message(ctx, from, &bytes));
    }

    fn dispatch<F>(&mut self, to: ProcessId, require_generation: Option<u64>, f: F)
    where
        F: FnOnce(&mut Box<dyn Process>, &mut Context<'_>),
    {
        let idx = to.0 as usize;
        if idx >= self.slots.len() {
            return;
        }
        if !self.slots[idx].up {
            return;
        }
        if let Some(generation) = require_generation {
            if self.slots[idx].generation != generation {
                return; // stale timer/start from a previous incarnation
            }
        }
        let Some(mut proc) = self.slots[idx].proc.take() else {
            return;
        };
        let mut ctx = Context::new(self, to);
        f(&mut proc, &mut ctx);
        // The process may have been crashed/restarted by a re-entrant control
        // action; only put it back if the slot is still vacant.
        let slot = &mut self.slots[idx];
        if slot.proc.is_none() {
            slot.proc = Some(proc);
        }
    }

    fn push(&mut self, at: Time, kind: EventKind) {
        assert!(
            self.queue.len() < self.max_queue,
            "event queue overflow: runaway simulation"
        );
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Reverse(QueuedEvent { at, seq, kind }));
    }

    fn do_send(&mut self, from: ProcessId, to: ProcessId, bytes: Bytes) {
        let now = self.clock.now();
        let Some(link) = self.links.get_mut(&(from.0, to.0)) else {
            self.metrics.count("sim.no_link_drop", 1);
            return;
        };
        if !link.up {
            self.metrics.count("sim.link_down_drop", 1);
            return;
        }
        let cfg = link.cfg;
        // Bandwidth queueing with a finite buffer: serialize messages on
        // the transmitter; tail-drop once the backlog exceeds `max_queue`.
        let tx_done = match cfg.bandwidth_bps {
            Some(bps) if bps > 0 => {
                let backlog = link.next_free.since(now);
                if backlog > cfg.max_queue {
                    self.metrics.count("sim.queue_drop", 1);
                    return;
                }
                let tx_us = (bytes.len() as u128 * 8 * 1_000_000 / bps as u128) as u64;
                let start = link.next_free.max(now);
                let done = start + Span::micros(tx_us.max(1));
                link.next_free = done;
                done
            }
            _ => now,
        };
        if cfg.loss > 0.0 && self.rng.gen_bool(cfg.loss.min(1.0)) {
            self.metrics.count("sim.loss_drop", 1);
            return;
        }
        let jitter = if cfg.jitter.0 > 0 {
            Span::micros(self.rng.gen_range(0..=cfg.jitter.0))
        } else {
            Span::ZERO
        };
        let bytes =
            if cfg.corrupt > 0.0 && !bytes.is_empty() && self.rng.gen_bool(cfg.corrupt.min(1.0)) {
                let mut corrupted = bytes.to_vec();
                let idx = self.rng.gen_range(0..corrupted.len());
                corrupted[idx] ^= 0x01;
                self.metrics.count("sim.corrupted", 1);
                Bytes::from(corrupted)
            } else {
                bytes
            };
        // Wire-layer duplication: the copy draws its own jitter, so the
        // pair can arrive reordered. Drawn only on dup-configured links to
        // keep RNG streams of existing seeds unchanged.
        if cfg.dup > 0.0 && self.rng.gen_bool(cfg.dup.min(1.0)) {
            let jitter2 = if cfg.jitter.0 > 0 {
                Span::micros(self.rng.gen_range(0..=cfg.jitter.0))
            } else {
                Span::ZERO
            };
            self.metrics.count("sim.dup", 1);
            self.push(
                tx_done + cfg.latency + jitter2,
                EventKind::Deliver {
                    to,
                    from,
                    bytes: bytes.clone(),
                },
            );
        }
        let arrival = tx_done + cfg.latency + jitter;
        let len = bytes.len() as u32;
        self.push(arrival, EventKind::Deliver { to, from, bytes });
        self.metrics.count("sim.sent", 1);
        if self.tracer.enabled() {
            self.tracer.record(
                now,
                TraceKind::MsgSend {
                    from: from.0,
                    to: to.0,
                    len,
                },
            );
            // Daemon-to-daemon transit time includes bandwidth queueing, so
            // this histogram is where overlay DoS pressure becomes visible.
            if self.tracer.is_overlay(from.0) && self.tracer.is_overlay(to.0) {
                self.metrics.observe("overlay.hop_us", arrival.since(now).0);
            }
        }
    }

    /// Dismantles the world into its raw actors and link configurations so
    /// an alternative substrate (the real-clock `spire-rt` runtime) can
    /// host the same deployment. Pending events, scheduled controls and
    /// link up/down state are discarded — call this on a freshly assembled
    /// world, before running it.
    pub fn into_fabric(mut self) -> Fabric {
        // `World` implements `Drop`, so fields are taken rather than moved.
        let slots = std::mem::take(&mut self.slots);
        let links = std::mem::take(&mut self.links);
        Fabric {
            actors: slots
                .into_iter()
                .map(|s| (s.name, s.proc.expect("process checked out")))
                .collect(),
            links: links
                .into_iter()
                .map(|((a, b), state)| ((a, b), state.cfg))
                .collect(),
            seed: self.seed,
        }
    }
}

/// The substrate-independent contents of an assembled deployment: named
/// actors and directed link configurations, plus the RNG seed. Produced by
/// [`World::into_fabric`] and consumed by the real-clock runtime.
pub struct Fabric {
    /// One `(name, state machine)` per process, indexed by `ProcessId`.
    pub actors: Vec<(String, Box<dyn Process>)>,
    /// Directed links `(from, to)` with their latency/jitter/loss model.
    pub links: Vec<((u32, u32), LinkConfig)>,
    /// The seed the world was built with.
    pub seed: u64,
}

impl Drop for World {
    /// A panicking run (failed assertion anywhere under the event loop)
    /// dumps the flight-recorder tail so the postmortem has the last events.
    fn drop(&mut self) {
        if self.tracer.enabled() && std::thread::panicking() {
            eprintln!(
                "=== panic with tracing enabled; {}",
                self.trace_dump_tail(100)
            );
        }
    }
}

impl std::fmt::Debug for World {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("World")
            .field("now", &self.clock.now())
            .field("processes", &self.slots.len())
            .field("links", &self.links.len())
            .field("queued", &self.queue.len())
            .finish()
    }
}

impl Backend for World {
    fn now(&self) -> Time {
        self.clock.now()
    }

    fn send_from(&mut self, from: ProcessId, to: ProcessId, bytes: Bytes) {
        self.do_send(from, to, bytes);
    }

    fn set_timer(&mut self, me: ProcessId, delay: Span, tag: u64) -> TimerId {
        let timer = TimerId(self.next_timer);
        self.next_timer += 1;
        let generation = self.slots[me.0 as usize].generation;
        let at = self.clock.now() + delay;
        self.push(
            at,
            EventKind::Timer {
                to: me,
                generation,
                timer,
                tag,
            },
        );
        timer
    }

    fn cancel_timer(&mut self, _me: ProcessId, timer: TimerId) {
        self.cancelled.insert(timer.0);
    }

    fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }

    fn count(&mut self, name: &str, delta: u64) {
        self.metrics.count(name, delta);
    }

    fn record(&mut self, name: &str, value: f64) {
        let now = self.clock.now();
        self.metrics.record(name, now, value);
    }

    fn observe(&mut self, name: &str, value: u64) {
        self.metrics.observe(name, value);
    }

    fn tracing_enabled(&self) -> bool {
        self.tracer.enabled()
    }

    fn trace(&mut self, kind: TraceKind) {
        World::trace(self, kind);
    }

    fn span_mark(&mut self, pid: u32, key: u64, phase: SpanPhase) {
        World::span_mark(self, pid, key, phase);
    }
}

/// The API surface a [`Process`] uses to act on its substrate.
pub struct Context<'w> {
    backend: &'w mut dyn Backend,
    me: ProcessId,
}

impl<'w> Context<'w> {
    /// Builds a context around any [`Backend`] (used by the world's event
    /// loop and by the real-clock runtime's workers).
    pub fn new(backend: &'w mut dyn Backend, me: ProcessId) -> Context<'w> {
        Context { backend, me }
    }

    /// Current time (virtual in the sim, monotonic in the runtime).
    pub fn now(&self) -> Time {
        self.backend.now()
    }

    /// This process's id.
    pub fn id(&self) -> ProcessId {
        self.me
    }

    /// Sends `bytes` to `to` over the configured link (dropped with a metric
    /// if no link exists or the link is down/lossy).
    pub fn send(&mut self, to: ProcessId, bytes: Bytes) {
        self.backend.send_from(self.me, to, bytes);
    }

    /// Sets a timer that fires after `delay` with the given tag.
    pub fn set_timer(&mut self, delay: Span, tag: u64) -> TimerId {
        self.backend.set_timer(self.me, delay, tag)
    }

    /// Cancels a pending timer (no-op if it already fired).
    pub fn cancel_timer(&mut self, timer: TimerId) {
        self.backend.cancel_timer(self.me, timer);
    }

    /// Deterministic RNG (per-world in the sim, per-worker in the runtime).
    pub fn rng(&mut self) -> &mut StdRng {
        self.backend.rng()
    }

    /// Increments a named counter metric.
    pub fn count(&mut self, name: &str, delta: u64) {
        self.backend.count(name, delta);
    }

    /// Records a named time-series sample at the current time.
    pub fn record(&mut self, name: &str, value: f64) {
        self.backend.record(name, value);
    }

    /// Records one value into a named log-bucketed histogram.
    pub fn observe(&mut self, name: &str, value: u64) {
        self.backend.observe(name, value);
    }

    /// Whether structured tracing is enabled (to gate instrumentation that
    /// needs any preparatory work).
    #[inline]
    pub fn tracing_enabled(&self) -> bool {
        self.backend.tracing_enabled()
    }

    /// Records a trace event at the current time (no-op when disabled).
    #[inline]
    pub fn trace(&mut self, kind: TraceKind) {
        self.backend.trace(kind);
    }

    /// Marks a causal-span phase for this process at the current time.
    #[inline]
    pub fn span_mark(&mut self, key: u64, phase: SpanPhase) {
        let me = self.me.0;
        self.backend.span_mark(me, key, phase);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Collector {
        received: Vec<(Time, Vec<u8>)>,
    }

    impl Process for Collector {
        fn on_message(&mut self, ctx: &mut Context<'_>, _from: ProcessId, bytes: &Bytes) {
            self.received.push((ctx.now(), bytes.to_vec()));
            ctx.record("rx_time", ctx.now().as_secs_f64());
        }
    }

    struct Sender {
        to: ProcessId,
        n: u32,
    }

    impl Process for Sender {
        fn on_start(&mut self, ctx: &mut Context<'_>) {
            for i in 0..self.n {
                ctx.send(self.to, Bytes::from(vec![i as u8]));
            }
        }
        fn on_message(&mut self, _: &mut Context<'_>, _: ProcessId, _: &Bytes) {}
    }

    fn fixed_link(latency_ms: u64) -> LinkConfig {
        LinkConfig {
            latency: Span::millis(latency_ms),
            jitter: Span::ZERO,
            loss: 0.0,
            corrupt: 0.0,
            dup: 0.0,
            bandwidth_bps: None,
            max_queue: Span::secs(10),
        }
    }

    #[test]
    fn message_delivery_latency() {
        let mut world = World::new(1);
        let rx = world.add_process(
            "rx",
            Box::new(Collector {
                received: Vec::new(),
            }),
        );
        let tx = world.add_process("tx", Box::new(Sender { to: rx, n: 1 }));
        world.add_link(tx, rx, fixed_link(10));
        world.run_for(Span::secs(1));
        assert_eq!(world.metrics().counter("sim.delivered"), 1);
        let series = world.metrics().series("rx_time");
        assert_eq!(series.len(), 1);
        assert!((series[0].1 - 0.010).abs() < 1e-9, "got {}", series[0].1);
    }

    #[test]
    fn no_link_drops() {
        let mut world = World::new(1);
        let rx = world.add_process(
            "rx",
            Box::new(Collector {
                received: Vec::new(),
            }),
        );
        let _tx = world.add_process("tx", Box::new(Sender { to: rx, n: 3 }));
        world.run_for(Span::secs(1));
        assert_eq!(world.metrics().counter("sim.no_link_drop"), 3);
        assert_eq!(world.metrics().counter("sim.delivered"), 0);
    }

    #[test]
    fn link_down_drops() {
        let mut world = World::new(1);
        let rx = world.add_process(
            "rx",
            Box::new(Collector {
                received: Vec::new(),
            }),
        );
        let tx = world.add_process("tx", Box::new(Sender { to: rx, n: 2 }));
        world.add_link(tx, rx, fixed_link(1));
        world.set_link_up(tx, rx, false);
        world.run_for(Span::secs(1));
        assert_eq!(world.metrics().counter("sim.link_down_drop"), 2);
    }

    #[test]
    fn lossy_link_drops_statistically() {
        let mut world = World::new(42);
        let rx = world.add_process(
            "rx",
            Box::new(Collector {
                received: Vec::new(),
            }),
        );
        let tx = world.add_process("tx", Box::new(Sender { to: rx, n: 200 }));
        world.add_link(tx, rx, fixed_link(1).with_loss(0.5));
        world.run_for(Span::secs(1));
        let delivered = world.metrics().counter("sim.delivered");
        assert!((50..150).contains(&delivered), "delivered={delivered}");
    }

    #[test]
    fn bandwidth_queueing_serializes() {
        // Two 1250-byte messages over a 1 Mbps link: 10 ms transmission
        // each, so the second arrives ~10 ms after the first.
        struct BigSender {
            to: ProcessId,
        }
        impl Process for BigSender {
            fn on_start(&mut self, ctx: &mut Context<'_>) {
                ctx.send(self.to, Bytes::from(vec![0u8; 1250]));
                ctx.send(self.to, Bytes::from(vec![1u8; 1250]));
            }
            fn on_message(&mut self, _: &mut Context<'_>, _: ProcessId, _: &Bytes) {}
        }
        let mut world = World::new(1);
        let rx = world.add_process(
            "rx",
            Box::new(Collector {
                received: Vec::new(),
            }),
        );
        let tx = world.add_process("tx", Box::new(BigSender { to: rx }));
        world.add_link(
            tx,
            rx,
            LinkConfig {
                latency: Span::millis(5),
                jitter: Span::ZERO,
                loss: 0.0,
                corrupt: 0.0,
                dup: 0.0,
                bandwidth_bps: Some(1_000_000),
                max_queue: Span::secs(10),
            },
        );
        world.run_for(Span::secs(1));
        let times = world.metrics().series("rx_time");
        assert_eq!(times.len(), 2);
        let gap = times[1].1 - times[0].1;
        assert!((gap - 0.010).abs() < 1e-6, "gap={gap}");
    }

    #[test]
    fn service_time_serializes_without_loss() {
        // A burst of 50 messages into a process modeling 10 ms of CPU
        // per message: every one is delivered (saturation is latency,
        // never loss), spaced by the service time, and the CPU queueing
        // is visible in the metric.
        let mut world = World::new(1);
        let rx = world.add_process(
            "rx",
            Box::new(Collector {
                received: Vec::new(),
            }),
        );
        world.set_service_time(rx, Span::millis(10));
        let tx = world.add_process("tx", Box::new(Sender { to: rx, n: 50 }));
        world.add_link(tx, rx, fixed_link(1));
        world.run_for(Span::secs(2));
        let times = world.metrics().series("rx_time");
        assert_eq!(times.len(), 50);
        let span = times[49].1 - times[0].1;
        assert!((span - 0.49).abs() < 1e-6, "span={span}");
        assert!(world.metrics().counter("sim.cpu_queued") > 0);
        assert_eq!(world.metrics().counter("sim.delivered"), 50);
    }

    #[test]
    fn timers_fire_and_cancel() {
        struct TimerProc {
            fired: Vec<u64>,
        }
        impl Process for TimerProc {
            fn on_start(&mut self, ctx: &mut Context<'_>) {
                ctx.set_timer(Span::millis(10), 1);
                let t = ctx.set_timer(Span::millis(20), 2);
                ctx.set_timer(Span::millis(30), 3);
                ctx.cancel_timer(t);
            }
            fn on_message(&mut self, _: &mut Context<'_>, _: ProcessId, _: &Bytes) {}
            fn on_timer(&mut self, ctx: &mut Context<'_>, tag: u64) {
                self.fired.push(tag);
                ctx.count("fired", 1);
            }
        }
        let mut world = World::new(1);
        world.add_process("t", Box::new(TimerProc { fired: Vec::new() }));
        world.run_for(Span::secs(1));
        assert_eq!(world.metrics().counter("fired"), 2);
    }

    #[test]
    fn crash_stops_delivery_and_restart_resumes() {
        let mut world = World::new(1);
        let rx = world.add_process(
            "rx",
            Box::new(Collector {
                received: Vec::new(),
            }),
        );
        let tx = world.add_process("tx", Box::new(Sender { to: rx, n: 1 }));
        world.add_link(tx, rx, fixed_link(10));
        world.crash(rx);
        world.run_for(Span::secs(1));
        assert_eq!(world.metrics().counter("sim.dropped_to_down_process"), 1);
        assert!(!world.is_up(rx));
        world.restart(
            rx,
            Box::new(Collector {
                received: Vec::new(),
            }),
        );
        assert!(world.is_up(rx));
        world.inject_message(world.now(), tx, rx, Bytes::from_static(b"x"));
        world.run_for(Span::secs(1));
        assert_eq!(world.metrics().counter("sim.delivered"), 1);
    }

    #[test]
    fn stale_timers_do_not_fire_after_restart() {
        struct T;
        impl Process for T {
            fn on_start(&mut self, ctx: &mut Context<'_>) {
                ctx.set_timer(Span::millis(100), 7);
            }
            fn on_message(&mut self, _: &mut Context<'_>, _: ProcessId, _: &Bytes) {}
            fn on_timer(&mut self, ctx: &mut Context<'_>, _tag: u64) {
                ctx.count("old_timer", 1);
            }
        }
        struct Quiet;
        impl Process for Quiet {
            fn on_message(&mut self, _: &mut Context<'_>, _: ProcessId, _: &Bytes) {}
            fn on_timer(&mut self, ctx: &mut Context<'_>, _tag: u64) {
                ctx.count("new_timer", 1);
            }
        }
        let mut world = World::new(1);
        let p = world.add_process("t", Box::new(T));
        world.run_for(Span::millis(10));
        world.restart(p, Box::new(Quiet));
        world.run_for(Span::secs(1));
        assert_eq!(world.metrics().counter("old_timer"), 0);
        assert_eq!(world.metrics().counter("new_timer"), 0);
    }

    #[test]
    fn control_events_run_at_time() {
        let mut world = World::new(1);
        world.schedule_control(Time(500_000), |w| {
            w.metrics_mut().count("control_ran", 1);
        });
        world.run_for(Span::millis(100));
        assert_eq!(world.metrics().counter("control_ran"), 0);
        world.run_for(Span::secs(1));
        assert_eq!(world.metrics().counter("control_ran"), 1);
    }

    #[test]
    fn determinism_same_seed_same_trace() {
        fn run(seed: u64) -> u64 {
            let mut world = World::new(seed);
            let rx = world.add_process(
                "rx",
                Box::new(Collector {
                    received: Vec::new(),
                }),
            );
            let tx = world.add_process("tx", Box::new(Sender { to: rx, n: 100 }));
            world.add_link(
                tx,
                rx,
                LinkConfig {
                    latency: Span::millis(3),
                    jitter: Span::millis(2),
                    loss: 0.2,
                    corrupt: 0.0,
                    dup: 0.0,
                    bandwidth_bps: Some(10_000_000),
                    max_queue: Span::secs(10),
                },
            );
            world.run_for(Span::secs(2));
            world.metrics().counter("sim.delivered")
        }
        assert_eq!(run(5), run(5));
        // Different seeds almost surely differ for 100 lossy sends.
        assert_ne!(run(5), run(6));
    }

    #[test]
    fn run_until_advances_time_even_when_idle() {
        let mut world = World::new(1);
        world.run_until(Time(123));
        assert_eq!(world.now(), Time(123));
    }

    #[test]
    fn tracing_captures_sends_and_feeds_overlay_histogram() {
        let mut world = World::new(1);
        let rx = world.add_process(
            "rx",
            Box::new(Collector {
                received: Vec::new(),
            }),
        );
        let tx = world.add_process("tx", Box::new(Sender { to: rx, n: 2 }));
        world.add_link(tx, rx, fixed_link(10));
        world.enable_tracing(1024);
        world.tracer_mut().mark_overlay(tx.0);
        world.tracer_mut().mark_overlay(rx.0);
        world.run_for(Span::secs(1));
        let sends = world
            .tracer()
            .recorder()
            .events()
            .filter(|e| matches!(e.kind, crate::trace::TraceKind::MsgSend { .. }))
            .count();
        let recvs = world
            .tracer()
            .recorder()
            .events()
            .filter(|e| matches!(e.kind, crate::trace::TraceKind::MsgRecv { .. }))
            .count();
        assert_eq!(sends, 2);
        assert_eq!(recvs, 2);
        let hops = world.metrics().histogram("overlay.hop_us").unwrap();
        assert_eq!(hops.count(), 2);
        assert_eq!(hops.min(), 10_000); // fixed 10 ms link
        let json = world.chrome_trace();
        assert!(json.contains("\"msg_send\""));
        assert!(json.contains("tx"));
    }

    #[test]
    fn span_marks_via_context_complete_into_histograms() {
        struct Submitter {
            to: ProcessId,
        }
        impl Process for Submitter {
            fn on_start(&mut self, ctx: &mut Context<'_>) {
                ctx.span_mark(
                    crate::trace::span_key(9, 1),
                    crate::trace::SpanPhase::Submit,
                );
                ctx.send(self.to, Bytes::from_static(b"op"));
            }
            fn on_message(&mut self, ctx: &mut Context<'_>, _: ProcessId, _: &Bytes) {
                ctx.span_mark(
                    crate::trace::span_key(9, 1),
                    crate::trace::SpanPhase::Confirm,
                );
            }
        }
        struct Echo;
        impl Process for Echo {
            fn on_message(&mut self, ctx: &mut Context<'_>, from: ProcessId, bytes: &Bytes) {
                ctx.span_mark(crate::trace::span_key(9, 1), crate::trace::SpanPhase::Recv);
                ctx.send(from, bytes.clone());
            }
        }
        let mut world = World::new(1);
        let echo = world.add_process("echo", Box::new(Echo));
        let sub = world.add_process("sub", Box::new(Submitter { to: echo }));
        world.add_link(echo, sub, fixed_link(5));
        world.enable_tracing(256);
        world.run_for(Span::secs(1));
        assert_eq!(world.tracer().completed_spans().len(), 1);
        let total = world.metrics().histogram("span.total_us").unwrap();
        assert_eq!(total.count(), 1);
        assert_eq!(total.min(), 10_000); // two 5 ms hops
        let overlay_in = world.metrics().histogram("span.overlay_in_us").unwrap();
        assert_eq!(overlay_in.min(), 5_000);
    }
}
