//! Deterministic discrete-event simulation substrate for the Spire
//! reproduction.
//!
//! The DSN 2018 Spire paper evaluates on a physical LAN testbed and an
//! emulated wide-area network. This crate is the substitute substrate (see
//! DESIGN.md): protocol logic runs unchanged as event-driven state machines
//! over a network model with per-link latency, jitter, loss, bandwidth
//! queueing, partitions and host crash/restart — all under virtual time with
//! a seeded RNG, so every experiment is exactly reproducible.
//!
//! * [`world`] — the event loop, processes, timers and the link model.
//! * [`clock`] — virtual vs monotonic time sources (shared with `spire-rt`).
//! * [`time`] — virtual time types.
//! * [`metrics`] — counters, time series and histograms collected during runs.
//! * [`stats`] — percentile/CDF summaries for the experiment harness.
//! * [`trace`] — flight recorder, causal spans, histograms and exporters.
//! * [`wire`] — canonical byte encoding shared by all protocol codecs.
//!
//! # Examples
//!
//! ```
//! use spire_sim::{World, Span};
//! let mut world = World::new(1);
//! world.run_for(Span::secs(10));
//! assert_eq!(world.now().as_millis(), 10_000);
//! ```

pub mod clock;
pub mod metrics;
pub mod stats;
pub mod time;
pub mod trace;
pub mod wire;
pub mod world;

pub use clock::Clock;
pub use metrics::Metrics;
pub use stats::Summary;
pub use time::{Span, Time};
pub use trace::{
    span_key, FlightRecorder, Histogram, SpanPhase, SpanRecord, TraceEvent, TraceKind, Tracer,
};
pub use wire::{WireError, WireReader, WireWriter};
pub use world::{
    Backend, Context, ControlOp, Fabric, LinkConfig, Process, ProcessId, SpawnFn, TimerId, World,
};
