//! Committed replay artifacts from real violations the explorers found.
//!
//! Each artifact pins the exact schedule that broke an invariant on an
//! earlier revision; the regression test replays it and asserts the
//! schedule stays clean. The artifact's own `violations` field records
//! what it used to trigger, for the archaeology.

use spire_explore::{xshard, Artifact, Harness, Scenario};

/// Replays a committed artifact and returns the violation kinds the
/// schedule produces on the current code.
fn replay_kinds(artifact_json: &str) -> Vec<String> {
    let artifact = Artifact::from_json_str(artifact_json).expect("artifact parses");
    let scenario = Scenario::named(&artifact.scenario, artifact.f, artifact.k, artifact.ops)
        .expect("known scenario");
    let harness = Harness::new(scenario);
    let cluster = harness.replay(&artifact.events);
    cluster.violation_kinds()
}

/// Found by the randomized explorer (honest scenario, seed 0) while
/// validating the pipelined ordering path: `ViewStateMsg` reported only
/// the *highest* prepared sequence, so with several sequences in flight a
/// lower prepared-and-elsewhere-committed matrix could be dropped from
/// the new-view plan and replaced, committing two different matrices at
/// one sequence. ViewState now carries every prepared claim above the
/// committed prefix; this schedule must stay violation-free.
#[test]
fn viewstate_single_claim_schedule_stays_safe() {
    let kinds = replay_kinds(include_str!(
        "../artifacts/viewstate_single_claim_conflicting_commit.json"
    ));
    assert!(
        kinds.is_empty(),
        "replayed schedule violated invariants: {kinds:?}"
    );
}

/// Hunted and shrunk by `xshard::hunt` against the planted
/// `seeded-xshard-bug` coordinator (an "impatient" commit phase that
/// aborts unacked groups after three retries while acked groups stay
/// committed — a textbook 2PC atomicity break). On an honest build the
/// schedule must stay clean; with the seeded feature compiled in it must
/// still reproduce the mixed decision, proving the ledger oracle and the
/// deterministic replay path both work end to end.
#[test]
fn xshard_impatient_coordinator_schedule() {
    let artifact = Artifact::from_json_str(include_str!(
        "../artifacts/xshard_impatient_coordinator_mixed_decision.json"
    ))
    .expect("artifact parses");
    assert!(
        artifact.seeded_bug,
        "artifact must record it was hunted under the seeded feature"
    );
    let harness = xshard::XHarness::new(
        xshard::XScenario::named(&artifact.scenario, artifact.ops).expect("known scenario"),
    );
    let kinds = harness.replay(&artifact.events).violation_kinds();
    if xshard::SEEDED_XSHARD_BUG_ACTIVE {
        assert_eq!(
            kinds,
            vec!["xshard-atomicity".to_string()],
            "seeded build must reproduce the committed violation"
        );
    } else {
        assert!(
            kinds.is_empty(),
            "honest build replayed the schedule into a violation: {kinds:?}"
        );
    }
}
