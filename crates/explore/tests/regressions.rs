//! Committed replay artifacts from real violations the explorers found.
//!
//! Each artifact pins the exact schedule that broke an invariant on an
//! earlier revision; the regression test replays it and asserts the
//! schedule stays clean. The artifact's own `violations` field records
//! what it used to trigger, for the archaeology.

use spire_explore::{Artifact, Harness, Scenario};

/// Replays a committed artifact and returns the violation kinds the
/// schedule produces on the current code.
fn replay_kinds(artifact_json: &str) -> Vec<String> {
    let artifact = Artifact::from_json_str(artifact_json).expect("artifact parses");
    let scenario = Scenario::named(&artifact.scenario, artifact.f, artifact.k, artifact.ops)
        .expect("known scenario");
    let harness = Harness::new(scenario);
    let cluster = harness.replay(&artifact.events);
    cluster.violation_kinds()
}

/// Found by the randomized explorer (honest scenario, seed 0) while
/// validating the pipelined ordering path: `ViewStateMsg` reported only
/// the *highest* prepared sequence, so with several sequences in flight a
/// lower prepared-and-elsewhere-committed matrix could be dropped from
/// the new-view plan and replaced, committing two different matrices at
/// one sequence. ViewState now carries every prepared claim above the
/// committed prefix; this schedule must stay violation-free.
#[test]
fn viewstate_single_claim_schedule_stays_safe() {
    let kinds = replay_kinds(include_str!(
        "../artifacts/viewstate_single_claim_conflicting_commit.json"
    ));
    assert!(
        kinds.is_empty(),
        "replayed schedule violated invariants: {kinds:?}"
    );
}
