//! End-to-end smoke tests for the exploration harness: liveness under the
//! randomized driver, exhaustive-search accounting, replay determinism,
//! and (under `--features seeded-commit-bug`) bug-catching + shrinking.

use spire_explore::{
    exhaustive, random, shrink, Artifact, Bounds, Harness, RandomParams, Scenario,
};
use spire_prime::model::SEEDED_BUG_ACTIVE;

fn harness(name: &str, ops: u32) -> Harness {
    Harness::new(Scenario::named(name, 1, 0, ops).expect("known scenario"))
}

#[test]
fn random_honest_executes_ops_without_violations() {
    // Under the correct build this also holds for every adversarial
    // scenario; the honest one additionally demonstrates liveness.
    let h = harness("honest", 3);
    let params = RandomParams {
        seed: 0xA11CE,
        episodes: 8,
        steps_per_episode: 600,
        wall_limit: None,
    };
    let report = random::explore(&h, &params);
    assert!(
        report.violation.is_none(),
        "honest run violated invariants: {:?}",
        report.violation
    );
    assert!(report.episodes == 8 && report.steps > 0);
    assert!(
        report.max_executed > 0,
        "no episode ordered and executed any op"
    );
}

#[test]
#[cfg_attr(
    not(feature = "seeded-commit-bug"),
    ignore = "needs the seeded bug build"
)]
fn seeded_bug_is_caught_and_shrinks_small() {
    if !SEEDED_BUG_ACTIVE {
        panic!("test ran without the seeded-commit-bug feature");
    }
    let h = harness("equivocating-leader", 2);
    let params = RandomParams {
        seed: 0,
        episodes: 512,
        steps_per_episode: 600,
        wall_limit: None,
    };
    let violation = random::hunt(&h, &params, 16, 25)
        .expect("randomized exploration must catch the seeded quorum bug");
    let shrunk = violation.schedule;
    assert!(
        shrunk.len() <= 25,
        "shrunk schedule still has {} events",
        shrunk.len()
    );
    // The shrunk schedule reproduces deterministically, including after a
    // JSON roundtrip (the exact --replay path).
    let kinds = shrink::reproduces(&h, &shrunk).expect("shrunk schedule must still fail");
    let artifact = Artifact {
        scenario: h.scenario.name.clone(),
        f: h.scenario.f,
        k: h.scenario.k,
        ops: h.scenario.ops,
        seed: params.seed,
        seeded_bug: SEEDED_BUG_ACTIVE,
        violations: kinds.clone(),
        events: shrunk,
    };
    let parsed = Artifact::from_json_str(&artifact.to_json_string()).expect("parses");
    assert_eq!(parsed, artifact);
    assert_eq!(
        shrink::reproduces(&h, &parsed.events).expect("replay must fail"),
        kinds
    );
}

#[test]
fn random_recovering_replica_rejoins_without_violations() {
    // k = 1: the last replica starts mid-state-transfer and its rejoin
    // (state requests, share fetches, or the genesis fallback) is
    // interleaved with ordering and view changes by the explorer. No
    // schedule may produce divergence, and the healthy quorum must still
    // order ops while the recovering replica is out.
    let h = Harness::new(Scenario::named("recovering-replica", 1, 1, 3).expect("known scenario"));
    let params = RandomParams {
        seed: 0x4EC,
        episodes: 6,
        steps_per_episode: 600,
        wall_limit: None,
    };
    let report = random::explore(&h, &params);
    assert!(
        report.violation.is_none(),
        "recovering-replica run violated invariants: {:?}",
        report.violation
    );
    assert!(
        report.max_executed > 0,
        "healthy quorum failed to order ops around the recovering replica"
    );
}

#[test]
fn recovering_replica_scenario_requires_k() {
    assert!(Scenario::named("recovering-replica", 1, 0, 2).is_err());
}

#[test]
fn exhaustive_tiny_config_is_clean_and_deduplicates() {
    if SEEDED_BUG_ACTIVE {
        // Under the bug build the exhaustive pass may legitimately find a
        // violation; the gated test above covers that path.
        return;
    }
    let h = harness("honest", 2);
    let mut bounds = Bounds::tiny();
    bounds.max_states = 3_000;
    bounds.max_depth = 10;
    let report = exhaustive::explore(&h, &bounds);
    assert!(
        report.violation.is_none(),
        "exhaustive exploration violated invariants: {:?}",
        report.violation
    );
    assert_eq!(report.states_visited, 3_000, "should reach the state cap");
    assert!(
        report.states_deduped > 0,
        "dedup should collapse interleavings"
    );
    assert!(report.deepest > 2);
}

#[test]
fn replays_are_deterministic() {
    let h = harness("equivocating-leader", 2);
    // Build a schedule greedily (FIFO delivery, earliest timer), recording
    // every applied choice.
    let mut cluster = h.build();
    let mut choices = Vec::new();
    for op in 0..2 {
        let choice = spire_explore::Choice::Inject { op };
        cluster.apply(&choice);
        choices.push(choice);
    }
    for _ in 0..60 {
        let choice = if let Some(key) = cluster.oldest_pending() {
            spire_explore::Choice::Deliver { key }
        } else if let Some(&(replica, tag, _)) = cluster.armed_timers().first() {
            spire_explore::Choice::Fire { replica, tag }
        } else {
            break;
        };
        cluster.apply(&choice);
        choices.push(choice);
    }
    assert!(choices.len() > 10);
    // Replaying the recorded schedule reproduces the exact cluster state.
    let c1 = h.replay(&choices);
    let c2 = h.replay(&choices);
    assert_eq!(c1.state_hash(), cluster.state_hash());
    assert_eq!(c1.state_hash(), c2.state_hash());
    assert_eq!(c1.steps, c2.steps);
    // Seeded randomized runs are reproducible end to end as well.
    let params = RandomParams {
        seed: 99,
        episodes: 2,
        steps_per_episode: 200,
        wall_limit: None,
    };
    let r1 = random::explore(&h, &params);
    let r2 = random::explore(&h, &params);
    assert_eq!(r1.steps, r2.steps);
    assert_eq!(r1.max_executed, r2.max_executed);
}
