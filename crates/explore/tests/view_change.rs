//! Schedule-driven regression tests for the view-change path
//! (`on_suspect` -> `on_view_state` -> `on_new_view`), the least-tested
//! region of `replica.rs`. Every test drives explicit schedules through
//! the model seam, so the exact interleaving is pinned — including the
//! ViewState *join* path, which wall-clock tests rarely isolate.

use spire_explore::{Artifact, Choice, Cluster, Harness, Scenario};
use spire_prime::model::SEEDED_BUG_ACTIVE;
use spire_prime::replica::TIMER_PROGRESS;

fn harness() -> Harness {
    Harness::new(Scenario::named("honest", 1, 0, 2).expect("known scenario"))
}

/// FIFO-delivers pending messages until quiescent (up to `max` steps).
fn drain(cluster: &mut Cluster<'_>, max: usize) {
    for _ in 0..max {
        let Some(key) = cluster.oldest_pending() else {
            return;
        };
        cluster.apply(&Choice::Deliver { key });
    }
}

fn views(cluster: &Cluster<'_>) -> Vec<u64> {
    let records = cluster.inspection.records();
    (0..4)
        .map(|i| records.get(&i).map(|r| r.view).unwrap_or(0))
        .collect()
}

/// Drives a view change where only replicas 0 and 1 time out (exactly the
/// `f + k + 1 = 2` suspect quorum), replica 2 is convinced by the Suspect
/// quorum alone, and replica 3 never sees any Suspect message — it must
/// install view 1 purely through the `on_view_state` join path (which
/// needs the full `2f + k + 1 = 3` ViewState quorum), after which the new
/// leader's NewView reaches everyone.
///
/// Progress suspicion requires outstanding work (`work_pending`), so the
/// schedule first injects one op at replica 0 and one at replica 1 (the
/// honest round-robin targets); the ops sit un-flushed in `pending_ops`
/// while the progress timeouts expire — a pure ordering stall.
fn drive_view_change(cluster: &mut Cluster<'_>) {
    cluster.apply(&Choice::Inject { op: 0 });
    cluster.apply(&Choice::Inject { op: 1 });
    cluster.apply(&Choice::Fire {
        replica: 0,
        tag: TIMER_PROGRESS,
    });
    cluster.apply(&Choice::Fire {
        replica: 1,
        tag: TIMER_PROGRESS,
    });
    // Drop the Suspect broadcasts addressed to replica 3 before anything
    // is delivered: the only pending traffic is the suspects.
    for key in cluster.pending_keys() {
        if key.to == 3 {
            cluster.apply(&Choice::Drop { key });
        }
    }
    drain(cluster, 300);
}

#[test]
fn suspect_quorum_then_viewstate_join_installs_new_view() {
    let h = harness();
    let mut cluster = h.build();
    drive_view_change(&mut cluster);
    assert_eq!(
        views(&cluster),
        vec![1, 1, 1, 1],
        "all replicas must reach view 1"
    );
    assert!(cluster.checker.ok(), "{:?}", cluster.checker.violations());
    // Replica 3 joined without ever observing a Suspect: the only route
    // is the ViewState-quorum join inside `on_view_state`.
}

#[test]
fn new_leader_orders_ops_after_view_change() {
    if SEEDED_BUG_ACTIVE {
        // The weakened-quorum build changes commit behavior; the bug legs
        // in explore_smoke.rs cover it.
        return;
    }
    let h = harness();
    let mut cluster = h.build();
    drive_view_change(&mut cluster);
    assert_eq!(views(&cluster), vec![1, 1, 1, 1]);
    // The injected op is still unexecuted; let view 1 (leader =
    // replica 1) order it: FIFO delivery plus earliest-due protocol
    // timers, but never another progress expiry (which would start
    // view 2).
    for _ in 0..600 {
        if cluster.inspection.max_executed() >= 1 {
            break;
        }
        if let Some(key) = cluster.oldest_pending() {
            cluster.apply(&Choice::Deliver { key });
            continue;
        }
        let Some(&(replica, tag, _)) = cluster
            .armed_timers()
            .iter()
            .find(|(_, tag, _)| *tag != TIMER_PROGRESS)
        else {
            break;
        };
        cluster.apply(&Choice::Fire { replica, tag });
    }
    assert!(
        cluster.inspection.max_executed() >= 1,
        "view-1 leader never ordered the injected op"
    );
    assert_eq!(
        views(&cluster),
        vec![1, 1, 1, 1],
        "no spurious further view change"
    );
    assert!(cluster.checker.ok(), "{:?}", cluster.checker.violations());
}

#[test]
fn view_change_schedule_replays_deterministically_via_artifact() {
    let h = harness();
    let mut cluster = h.build();
    drive_view_change(&mut cluster);
    let reference_hash = cluster.state_hash();
    // The applied schedule serializes into a replay artifact, survives the
    // JSON roundtrip, and replaying it reproduces the exact state.
    let artifact = Artifact {
        scenario: h.scenario.name.clone(),
        f: h.scenario.f,
        k: h.scenario.k,
        ops: h.scenario.ops,
        seed: 0,
        seeded_bug: SEEDED_BUG_ACTIVE,
        violations: Vec::new(),
        events: cluster.schedule.clone(),
    };
    let parsed = Artifact::from_json_str(&artifact.to_json_string()).expect("parses");
    assert_eq!(parsed, artifact);
    let replayed = h.replay(&parsed.events);
    assert_eq!(replayed.state_hash(), reference_hash);
    assert_eq!(views(&replayed), vec![1, 1, 1, 1]);
}
