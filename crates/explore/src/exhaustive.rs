//! Bounded exhaustive interleaving for tiny configs.
//!
//! Breadth-first search over schedule prefixes. Clusters are not clonable
//! (replicas own live state plus a shared inspection registry), so each
//! frontier node is a *prefix of choices* replayed from genesis — replay
//! is deterministic, so a prefix is a perfect, compact state snapshot.
//! Child states hash into a seen-set ([`Cluster::state_hash`]); commuting
//! delivery orders collapse into one state, which is what makes n=4
//! configs tractable.

use crate::cluster::{Bounds, Harness};
use crate::schedule::Choice;
use std::collections::{HashSet, VecDeque};

/// A schedule that trips the invariant checker.
#[derive(Clone, Debug)]
pub struct FoundViolation {
    /// The full (unshrunk) failing schedule.
    pub schedule: Vec<Choice>,
    /// Distinct violation kinds it triggers.
    pub kinds: Vec<String>,
}

/// Outcome of one exhaustive run.
#[derive(Clone, Debug, Default)]
pub struct ExhaustiveReport {
    /// Distinct states visited (after dedup), including the initial state.
    pub states_visited: u64,
    /// Transitions that landed on an already-seen state.
    pub states_deduped: u64,
    /// Full genesis replays performed (the dominant cost).
    pub replays: u64,
    /// Longest schedule expanded.
    pub deepest: usize,
    /// True if the frontier emptied before `max_states` was hit.
    pub frontier_exhausted: bool,
    /// The first violating schedule found, if any (search stops on it).
    pub violation: Option<FoundViolation>,
}

/// Explores every schedule under `bounds`, stopping at the first
/// invariant violation, at `max_states` distinct states, or when the
/// frontier is exhausted.
pub fn explore(harness: &Harness, bounds: &Bounds) -> ExhaustiveReport {
    let mut report = ExhaustiveReport::default();
    let mut seen: HashSet<u64> = HashSet::new();
    let root = harness.build();
    if !root.checker.ok() {
        report.states_visited = 1;
        report.violation = Some(FoundViolation {
            kinds: root.violation_kinds(),
            schedule: Vec::new(),
        });
        return report;
    }
    seen.insert(root.state_hash());
    report.states_visited = 1;
    let mut frontier: VecDeque<Vec<Choice>> = VecDeque::new();
    frontier.push_back(Vec::new());
    while let Some(prefix) = frontier.pop_front() {
        if prefix.len() >= bounds.max_depth {
            continue;
        }
        let base = harness.replay(&prefix);
        report.replays += 1;
        for choice in base.enabled_choices(bounds) {
            if report.states_visited >= bounds.max_states {
                return report;
            }
            let mut child = harness.replay(&prefix);
            report.replays += 1;
            child.apply(&choice);
            if !child.checker.ok() {
                report.violation = Some(FoundViolation {
                    kinds: child.violation_kinds(),
                    schedule: child.schedule,
                });
                return report;
            }
            let hash = child.state_hash();
            if seen.insert(hash) {
                report.states_visited += 1;
                let mut extended = prefix.clone();
                extended.push(choice);
                report.deepest = report.deepest.max(extended.len());
                frontier.push_back(extended);
            } else {
                report.states_deduped += 1;
            }
        }
    }
    report.frontier_exhausted = true;
    report
}
