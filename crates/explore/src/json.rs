//! Minimal JSON value, writer, and parser for replay artifacts.
//!
//! The workspace deliberately vendors no JSON crate, and replay artifacts
//! need only a tiny dialect: objects, arrays, strings, booleans, and
//! *unsigned decimal integers* (64-bit digests travel as hex strings, so
//! floats and negative numbers never occur). This module implements
//! exactly that dialect — the writer emits it and the parser accepts it
//! plus insignificant whitespace.

use std::fmt::Write as _;

/// A JSON value in the artifact dialect.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    /// Unsigned integers only; large u64s must be carried as hex strings.
    Num(u64),
    Str(String),
    Arr(Vec<Json>),
    /// Insertion-ordered key/value pairs.
    Obj(Vec<(String, Json)>),
}

/// Serializes compactly (no insignificant whitespace).
impl std::fmt::Display for Json {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut out = String::new();
        self.write(&mut out);
        f.write_str(&out)
    }
}

impl Json {
    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an unsigned integer, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                let _ = write!(out, "{n}");
            }
            Json::Str(s) => write_string(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a complete JSON document in the artifact dialect.
pub fn parse(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, byte: u8) -> Result<(), String> {
    if *pos < bytes.len() && bytes[*pos] == byte {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", byte as char, *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b'0'..=b'9') => parse_number(bytes, pos),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        _ => Err(format!("unexpected input at byte {}", *pos)),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("bad literal at byte {}", *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < bytes.len() && bytes[*pos].is_ascii_digit() {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).expect("digits are utf8");
    text.parse::<u64>()
        .map(Json::Num)
        .map_err(|e| format!("bad number at byte {start}: {e}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        let Some(&b) = bytes.get(*pos) else {
            return Err("unterminated string".to_string());
        };
        *pos += 1;
        match b {
            b'"' => return Ok(out),
            b'\\' => {
                let Some(&esc) = bytes.get(*pos) else {
                    return Err("unterminated escape".to_string());
                };
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b't' => out.push('\t'),
                    b'r' => out.push('\r'),
                    b'u' => {
                        if *pos + 4 > bytes.len() {
                            return Err("truncated \\u escape".to_string());
                        }
                        let hex = std::str::from_utf8(&bytes[*pos..*pos + 4])
                            .map_err(|_| "bad \\u escape".to_string())?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| "bad \\u escape".to_string())?;
                        *pos += 4;
                        out.push(char::from_u32(code).ok_or("bad \\u code point")?);
                    }
                    _ => return Err(format!("unknown escape at byte {}", *pos - 1)),
                }
            }
            _ => {
                // Re-walk multi-byte UTF-8 sequences from the byte stream.
                let len = utf8_len(b);
                if len == 1 {
                    out.push(b as char);
                } else {
                    let start = *pos - 1;
                    if start + len > bytes.len() {
                        return Err("truncated utf8 in string".to_string());
                    }
                    let s = std::str::from_utf8(&bytes[start..start + len])
                        .map_err(|_| "bad utf8 in string".to_string())?;
                    out.push_str(s);
                    *pos = start + len;
                }
            }
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'{')?;
    let mut pairs = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(pairs));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        pairs.push((key, parse_value(bytes, pos)?));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips() {
        let v = Json::Obj(vec![
            ("a".into(), Json::Num(u64::MAX)),
            ("b".into(), Json::Str("x\"\\\n\u{1}é".into())),
            (
                "c".into(),
                Json::Arr(vec![Json::Bool(true), Json::Null, Json::Num(0)]),
            ),
        ]);
        let text = v.to_string();
        assert_eq!(parse(&text).unwrap(), v);
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse("{} x").is_err());
        assert!(parse("[1,]").is_err());
    }
}
