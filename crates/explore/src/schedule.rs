//! Schedules, stable message keys, and the JSON replay artifact.

use crate::json::{parse, Json};

/// Content-addressed identity of a pending message, stable across replays
/// *and* across schedule edits.
///
/// A message is `(from, to, fnv64(bytes), nth)` where `nth` counts prior
/// emissions of the same `(from, to, digest)` triple over the cluster's
/// whole history. Replaying a schedule prefix regenerates exactly the same
/// keys, and — crucially for shrinking — a choice whose key no longer
/// names a pending message (because delta debugging removed the event that
/// produced it) degrades to a no-op instead of desynchronizing the replay.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct MsgKey {
    /// Sender process id (replica index, or `n` for the injection client).
    pub from: u32,
    /// Destination replica index.
    pub to: u32,
    /// FNV-1a digest of the frame bytes.
    pub digest: u64,
    /// Which same-digest emission on this link (0-based).
    pub nth: u32,
}

/// One scheduled nondeterministic event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Choice {
    /// Deliver pre-signed client op `op` to its scenario-assigned replica.
    Inject { op: u32 },
    /// Deliver (and consume) a pending message.
    Deliver { key: MsgKey },
    /// Re-enqueue a copy of a pending message (duplication attack).
    Duplicate { key: MsgKey },
    /// Silently discard a pending message (loss / partition).
    Drop { key: MsgKey },
    /// Fire a pending timer; the virtual clock jumps to its due time.
    Fire { replica: u32, tag: u64 },
}

impl Choice {
    fn to_json(&self) -> Json {
        let key_fields = |key: &MsgKey| {
            vec![
                ("from".to_string(), Json::Num(key.from as u64)),
                ("to".to_string(), Json::Num(key.to as u64)),
                (
                    "digest".to_string(),
                    Json::Str(format!("{:016x}", key.digest)),
                ),
                ("nth".to_string(), Json::Num(key.nth as u64)),
            ]
        };
        match self {
            Choice::Inject { op } => Json::Obj(vec![
                ("t".to_string(), Json::Str("inject".to_string())),
                ("op".to_string(), Json::Num(*op as u64)),
            ]),
            Choice::Deliver { key } => {
                let mut fields = vec![("t".to_string(), Json::Str("deliver".to_string()))];
                fields.extend(key_fields(key));
                Json::Obj(fields)
            }
            Choice::Duplicate { key } => {
                let mut fields = vec![("t".to_string(), Json::Str("dup".to_string()))];
                fields.extend(key_fields(key));
                Json::Obj(fields)
            }
            Choice::Drop { key } => {
                let mut fields = vec![("t".to_string(), Json::Str("drop".to_string()))];
                fields.extend(key_fields(key));
                Json::Obj(fields)
            }
            Choice::Fire { replica, tag } => Json::Obj(vec![
                ("t".to_string(), Json::Str("fire".to_string())),
                ("replica".to_string(), Json::Num(*replica as u64)),
                ("tag".to_string(), Json::Num(*tag)),
            ]),
        }
    }

    fn from_json(value: &Json) -> Result<Choice, String> {
        let tag = value
            .get("t")
            .and_then(Json::as_str)
            .ok_or("event missing \"t\"")?;
        let u32_field = |name: &str| -> Result<u32, String> {
            value
                .get(name)
                .and_then(Json::as_u64)
                .and_then(|n| u32::try_from(n).ok())
                .ok_or_else(|| format!("event missing u32 field \"{name}\""))
        };
        let key = || -> Result<MsgKey, String> {
            let digest_hex = value
                .get("digest")
                .and_then(Json::as_str)
                .ok_or("event missing \"digest\"")?;
            let digest =
                u64::from_str_radix(digest_hex, 16).map_err(|e| format!("bad digest hex: {e}"))?;
            Ok(MsgKey {
                from: u32_field("from")?,
                to: u32_field("to")?,
                digest,
                nth: u32_field("nth")?,
            })
        };
        match tag {
            "inject" => Ok(Choice::Inject {
                op: u32_field("op")?,
            }),
            "deliver" => Ok(Choice::Deliver { key: key()? }),
            "dup" => Ok(Choice::Duplicate { key: key()? }),
            "drop" => Ok(Choice::Drop { key: key()? }),
            "fire" => Ok(Choice::Fire {
                replica: u32_field("replica")?,
                tag: value
                    .get("tag")
                    .and_then(Json::as_u64)
                    .ok_or("event missing \"tag\"")?,
            }),
            other => Err(format!("unknown event type \"{other}\"")),
        }
    }
}

/// A self-describing, deterministically replayable failure record.
#[derive(Clone, Debug, PartialEq)]
pub struct Artifact {
    /// Scenario name (behavior assignment), see [`crate::Scenario`].
    pub scenario: String,
    /// Prime `f` (Byzantine budget).
    pub f: u32,
    /// Prime `k` (recovering budget).
    pub k: u32,
    /// Number of pre-signed client ops available to `Inject`.
    pub ops: u32,
    /// The seed that produced the schedule (0 for exhaustive search).
    pub seed: u64,
    /// Whether the build carried the `seeded-commit-bug` feature; a replay
    /// must be run against the same build to reproduce.
    pub seeded_bug: bool,
    /// Violation kinds the schedule triggers.
    pub violations: Vec<String>,
    /// The (shrunken) schedule itself.
    pub events: Vec<Choice>,
}

impl Artifact {
    /// Serializes to the replay JSON document.
    pub fn to_json_string(&self) -> String {
        Json::Obj(vec![
            ("version".to_string(), Json::Num(1)),
            ("scenario".to_string(), Json::Str(self.scenario.clone())),
            ("f".to_string(), Json::Num(self.f as u64)),
            ("k".to_string(), Json::Num(self.k as u64)),
            ("ops".to_string(), Json::Num(self.ops as u64)),
            ("seed".to_string(), Json::Num(self.seed)),
            ("seeded_bug".to_string(), Json::Bool(self.seeded_bug)),
            (
                "violations".to_string(),
                Json::Arr(
                    self.violations
                        .iter()
                        .map(|v| Json::Str(v.clone()))
                        .collect(),
                ),
            ),
            (
                "events".to_string(),
                Json::Arr(self.events.iter().map(Choice::to_json).collect()),
            ),
        ])
        .to_string()
    }

    /// Parses a replay JSON document.
    pub fn from_json_str(text: &str) -> Result<Artifact, String> {
        let doc = parse(text)?;
        let version = doc
            .get("version")
            .and_then(Json::as_u64)
            .ok_or("artifact missing \"version\"")?;
        if version != 1 {
            return Err(format!("unsupported artifact version {version}"));
        }
        let u32_field = |name: &str| -> Result<u32, String> {
            doc.get(name)
                .and_then(Json::as_u64)
                .and_then(|n| u32::try_from(n).ok())
                .ok_or_else(|| format!("artifact missing u32 field \"{name}\""))
        };
        let events = doc
            .get("events")
            .and_then(Json::as_arr)
            .ok_or("artifact missing \"events\"")?
            .iter()
            .map(Choice::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        let violations = doc
            .get("violations")
            .and_then(Json::as_arr)
            .unwrap_or(&[])
            .iter()
            .filter_map(Json::as_str)
            .map(str::to_string)
            .collect();
        Ok(Artifact {
            scenario: doc
                .get("scenario")
                .and_then(Json::as_str)
                .ok_or("artifact missing \"scenario\"")?
                .to_string(),
            f: u32_field("f")?,
            k: u32_field("k")?,
            ops: u32_field("ops")?,
            seed: doc.get("seed").and_then(Json::as_u64).unwrap_or(0),
            seeded_bug: doc
                .get("seeded_bug")
                .and_then(Json::as_bool)
                .unwrap_or(false),
            violations,
            events,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn artifact_roundtrips() {
        let artifact = Artifact {
            scenario: "equivocating-leader".to_string(),
            f: 1,
            k: 0,
            ops: 2,
            seed: 0xDEAD_BEEF,
            seeded_bug: true,
            violations: vec!["conflicting-commit".to_string()],
            events: vec![
                Choice::Inject { op: 0 },
                Choice::Deliver {
                    key: MsgKey {
                        from: 1,
                        to: 2,
                        digest: u64::MAX,
                        nth: 3,
                    },
                },
                Choice::Duplicate {
                    key: MsgKey {
                        from: 0,
                        to: 1,
                        digest: 42,
                        nth: 0,
                    },
                },
                Choice::Drop {
                    key: MsgKey {
                        from: 2,
                        to: 0,
                        digest: 7,
                        nth: 1,
                    },
                },
                Choice::Fire { replica: 3, tag: 5 },
            ],
        };
        let text = artifact.to_json_string();
        assert_eq!(Artifact::from_json_str(&text).unwrap(), artifact);
    }
}
