//! Seeded randomized schedule exploration with weighted adversarial
//! choices: reordering (random rather than FIFO delivery), duplication,
//! drops, and partition bursts that discard every message crossing a
//! random cut. Byzantine-leader misbehavior (equivocation, proposal
//! delay) comes from the scenario's behavior assignment, so the random
//! driver composes network-level adversaries with replica-level ones.
//!
//! Exploration runs in *episodes*: each derives its own sub-seed, builds
//! a fresh cluster, and walks up to `steps_per_episode` choices, checking
//! invariants after every one. Any episode is reproducible from
//! `(scenario, seed, episode index)` alone — but failures are reported as
//! the explicit applied schedule, which replays without any RNG at all.

use crate::cluster::Harness;
use crate::exhaustive::FoundViolation;
use crate::schedule::Choice;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::{Duration, Instant};

/// Parameters for a randomized run.
#[derive(Clone, Debug)]
pub struct RandomParams {
    /// Master seed; episode `i` uses `seed ^ mix(i)`.
    pub seed: u64,
    /// Maximum episodes (`u64::MAX` to rely on `wall_limit`).
    pub episodes: u64,
    /// Choice budget per episode.
    pub steps_per_episode: usize,
    /// Optional wall-clock budget for the whole run.
    pub wall_limit: Option<Duration>,
}

impl Default for RandomParams {
    fn default() -> RandomParams {
        RandomParams {
            seed: 0,
            episodes: 64,
            steps_per_episode: 400,
            wall_limit: None,
        }
    }
}

/// Outcome of a randomized run.
#[derive(Clone, Debug, Default)]
pub struct RandomReport {
    /// Episodes completed (or cut short by a violation / wall limit).
    pub episodes: u64,
    /// Total applied choices across all episodes.
    pub steps: u64,
    /// Executed-op high-water mark across episodes (progress evidence).
    pub max_executed: u64,
    /// The first violating schedule, if any (the run stops on it).
    pub violation: Option<FoundViolation>,
}

fn episode_seed(master: u64, episode: u64) -> u64 {
    // splitmix64-style mix so consecutive episodes decorrelate.
    let mut z = master ^ episode.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Runs randomized exploration until a violation, the episode budget, or
/// the wall limit.
pub fn explore(harness: &Harness, params: &RandomParams) -> RandomReport {
    let mut report = RandomReport::default();
    let started = Instant::now();
    for episode in 0..params.episodes {
        if let Some(limit) = params.wall_limit {
            if started.elapsed() >= limit {
                break;
            }
        }
        let mut rng = StdRng::seed_from_u64(episode_seed(params.seed, episode));
        let mut cluster = harness.build();
        let mut applied = 0usize;
        while applied < params.steps_per_episode {
            let choices = pick(&mut rng, &cluster);
            if choices.is_empty() {
                break;
            }
            for choice in choices {
                if cluster.apply(&choice) {
                    applied += 1;
                    report.steps += 1;
                }
                if !cluster.checker.ok() {
                    report.episodes = episode + 1;
                    report.max_executed =
                        report.max_executed.max(cluster.inspection.max_executed());
                    report.violation = Some(FoundViolation {
                        kinds: cluster.violation_kinds(),
                        schedule: cluster.schedule,
                    });
                    return report;
                }
            }
        }
        report.max_executed = report.max_executed.max(cluster.inspection.max_executed());
        report.episodes = episode + 1;
    }
    report
}

/// Repeatedly explores (bumping the seed each round) and shrinks every
/// violation found, keeping the smallest; stops early once a shrunk
/// schedule has at most `target_len` events, or after `rounds` rounds.
///
/// Delta debugging only finds a *local* minimum, and how small it lands
/// depends on the shape of the starting schedule — hunting across a few
/// seeds reliably reaches near-global minima (e.g. the seeded quorum bug
/// shrinks to ~12 events) where a single unlucky seed plateaus at ~30.
pub fn hunt(
    harness: &Harness,
    base: &RandomParams,
    rounds: u64,
    target_len: usize,
) -> Option<FoundViolation> {
    let started = Instant::now();
    let mut best: Option<FoundViolation> = None;
    for round in 0..rounds {
        let mut params = base.clone();
        params.seed = base.seed.wrapping_add(round);
        if let Some(limit) = base.wall_limit {
            let left = limit.saturating_sub(started.elapsed());
            if left.is_zero() {
                break;
            }
            params.wall_limit = Some(left);
        }
        let Some(found) = explore(harness, &params).violation else {
            continue;
        };
        let shrunk = crate::shrink::shrink(harness, &found.schedule);
        let kinds = crate::shrink::reproduces(harness, &shrunk)
            .expect("shrunk schedule must still reproduce");
        if best
            .as_ref()
            .map(|b| shrunk.len() < b.schedule.len())
            .unwrap_or(true)
        {
            best = Some(FoundViolation {
                schedule: shrunk,
                kinds,
            });
        }
        if best
            .as_ref()
            .map(|b| b.schedule.len() <= target_len)
            .unwrap_or(false)
        {
            break;
        }
    }
    best
}

/// Picks the next choice(s) by weighted category. Partition bursts return
/// several `Drop`s at once; every other category returns one choice.
fn pick(rng: &mut StdRng, cluster: &crate::cluster::Cluster<'_>) -> Vec<Choice> {
    let pending = cluster.pending_keys();
    let timers = cluster.armed_timers();
    let ops = cluster.uninjected_ops();
    let roll: u32 = rng.gen_range(0..100);
    match roll {
        // Inject a fresh client op.
        0..=9 if !ops.is_empty() => {
            vec![Choice::Inject {
                op: ops[rng.gen_range(0..ops.len())],
            }]
        }
        // FIFO delivery: the common case, keeps episodes making progress.
        10..=54 if !pending.is_empty() => {
            vec![Choice::Deliver {
                key: cluster.oldest_pending().expect("pending nonempty"),
            }]
        }
        // Reorder: deliver a uniformly random pending message.
        55..=69 if !pending.is_empty() => {
            vec![Choice::Deliver {
                key: pending[rng.gen_range(0..pending.len())].clone(),
            }]
        }
        // Fire the earliest-due timer (realistic clock progression).
        70..=81 if !timers.is_empty() => {
            let (replica, tag, _) = timers[0];
            vec![Choice::Fire { replica, tag }]
        }
        // Duplicate a random pending message.
        82..=85 if !pending.is_empty() => {
            vec![Choice::Duplicate {
                key: pending[rng.gen_range(0..pending.len())].clone(),
            }]
        }
        // Drop a random pending message.
        86..=92 if !pending.is_empty() => {
            vec![Choice::Drop {
                key: pending[rng.gen_range(0..pending.len())].clone(),
            }]
        }
        // Partition burst: pick a random side-assignment and drop every
        // pending message that crosses the cut.
        93..=96 if !pending.is_empty() => {
            let side_mask: u32 = rng.gen();
            let crossing: Vec<Choice> = pending
                .iter()
                .filter(|key| {
                    let from_side = (side_mask >> (key.from % 32)) & 1;
                    let to_side = (side_mask >> (key.to % 32)) & 1;
                    from_side != to_side
                })
                .map(|key| Choice::Drop { key: key.clone() })
                .collect();
            if crossing.is_empty() {
                fallback(cluster)
            } else {
                crossing
            }
        }
        // Timing skew: fire a uniformly random armed timer.
        97..=99 if !timers.is_empty() => {
            let (replica, tag, _) = timers[rng.gen_range(0..timers.len())];
            vec![Choice::Fire { replica, tag }]
        }
        // Chosen category empty right now — do something useful instead.
        _ => fallback(cluster),
    }
}

fn fallback(cluster: &crate::cluster::Cluster<'_>) -> Vec<Choice> {
    if let Some(key) = cluster.oldest_pending() {
        return vec![Choice::Deliver { key }];
    }
    if let Some(&(replica, tag, _)) = cluster.armed_timers().first() {
        return vec![Choice::Fire { replica, tag }];
    }
    if let Some(&op) = cluster.uninjected_ops().first() {
        return vec![Choice::Inject { op }];
    }
    Vec::new()
}
