//! Greedy delta-debugging over failing schedules.
//!
//! Works because [`Cluster::apply`](crate::cluster::Cluster::apply) makes
//! choices that reference vanished state no-ops: removing the event that
//! *produced* a message silently disables every later event that touches
//! it, so plain subsequence removal never desynchronizes a replay. The
//! shrinker removes chunks at halving granularity (classic ddmin shape),
//! keeping any candidate that still trips the invariant checker, then
//! drops the trailing no-ops from the surviving schedule.

use crate::cluster::Harness;
use crate::schedule::Choice;

/// Replays `events` from genesis; returns the violation kinds if the
/// schedule still fails, `None` if it is now clean.
pub fn reproduces(harness: &Harness, events: &[Choice]) -> Option<Vec<String>> {
    let cluster = harness.replay(events);
    if cluster.checker.ok() {
        None
    } else {
        Some(cluster.violation_kinds())
    }
}

/// Shrinks a failing schedule to a (locally) 1-minimal failing
/// subsequence. The input must fail; the result is the *applied* schedule
/// of the final replay, so no-op remnants are already pruned.
pub fn shrink(harness: &Harness, events: &[Choice]) -> Vec<Choice> {
    debug_assert!(
        reproduces(harness, events).is_some(),
        "shrink() requires a failing schedule"
    );
    // Start from the applied projection: events that were already no-ops
    // in the original replay carry no information.
    let mut current: Vec<Choice> = harness.replay(events).schedule;
    // Each full halving descent changes which other removals succeed (a
    // removed delivery turns its dependents into removable no-ops), so
    // repeat descents until a whole pass makes no progress.
    loop {
        let before = current.len();
        let mut chunk = (current.len() / 2).max(1);
        loop {
            let mut start = 0;
            while start < current.len() {
                let end = (start + chunk).min(current.len());
                let mut candidate = current.clone();
                candidate.drain(start..end);
                if !candidate.is_empty() && reproduces(harness, &candidate).is_some() {
                    current = candidate;
                    // Re-test the same offset: the next chunk slid into it.
                } else {
                    start = end;
                }
            }
            if chunk == 1 {
                break;
            }
            chunk = (chunk / 2).max(1);
        }
        // Project back to applied choices before measuring progress.
        current = harness.replay(&current).schedule;
        if current.len() >= before {
            break;
        }
    }
    current
}
