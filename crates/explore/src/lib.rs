//! Schedule exploration harness over the Prime model seam.
//!
//! `spire-prime`'s [`ModelReplica`](spire_prime::ModelReplica) turns a
//! replica into a pure transition function: the caller injects every
//! nondeterministic event (message delivery, timer firing, clock reads)
//! and receives the side effects back as data. This crate drives whole
//! clusters of model replicas through *schedules* — explicit sequences of
//! [`Choice`]s — and checks the shared
//! [`InvariantChecker`](spire::invariant::InvariantChecker) predicates
//! after every step.
//!
//! Three drivers are provided:
//!
//! - [`exhaustive::explore`] — bounded exhaustive interleaving for tiny
//!   configs (breadth-first over choice prefixes with state-hash
//!   deduplication, so commuting delivery orders collapse);
//! - [`random::explore`] — seeded randomized exploration with weighted
//!   adversarial choices (reorder, duplicate, drop, partition bursts) for
//!   larger configs and longer horizons;
//! - [`shrink::shrink`] — greedy delta debugging over a failing schedule,
//!   exploiting that choices referencing vanished messages/timers are
//!   no-ops (so removing a cause silently disables its dependents).
//!
//! Failing schedules serialize to a self-describing JSON replay artifact
//! ([`Artifact`]); `exp_x1_explore --replay=PATH` in `spire-bench`
//! re-executes one deterministically.

pub mod cluster;
pub mod exhaustive;
pub mod json;
pub mod random;
pub mod schedule;
pub mod shrink;
pub mod xshard;

pub use cluster::{Bounds, Cluster, Harness, Scenario};
pub use exhaustive::{ExhaustiveReport, FoundViolation};
pub use random::{RandomParams, RandomReport};
pub use schedule::{Artifact, Choice, MsgKey};

/// FNV-1a over arbitrary bytes; the stable 64-bit content digest used to
/// address pending messages and to fold per-replica state digests into a
/// cluster hash. Not cryptographic — collisions merely merge exploration
/// states or schedule keys, never corrupt the protocol under test.
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}
