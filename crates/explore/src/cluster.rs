//! The explorable cluster: a set of [`ModelReplica`]s plus the explicit
//! nondeterminism pool (pending messages, armed timers, virtual clock)
//! that schedules choose from.

use crate::fnv64;
use crate::schedule::{Choice, MsgKey};
use bytes::Bytes;
use spire::InvariantChecker;
use spire_crypto::keys::Signer;
use spire_crypto::{KeyMaterial, KeyStore, NodeId};
use spire_prime::replica::{
    TIMER_PING, TIMER_PO_FLUSH, TIMER_PRE_PREPARE, TIMER_PROGRESS, TIMER_STATE_REQ, TIMER_SUMMARY,
};
use spire_prime::{
    ByzBehavior, ClientId, ClientOp, DirectNet, Effect, HashChainApp, Input, Inspection,
    ModelReplica, PrimeConfig, PrimeMsg, Replica, ReplicaId,
};
use spire_sim::{ProcessId, Span, Time};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::{Arc, Mutex};

/// A named behavior assignment over an `n = 3f + 2k + 1` cluster.
///
/// Known names: `honest` (no faults), `equivocating-leader` (replica 0
/// equivocates when leader — the safety attack quorums must contain),
/// `leader-delay` (replica 0 mounts Prime's signature performance attack),
/// `mute-replica` (last replica is crash-like), `po-equivocation`
/// (replica 1 equivocates pre-order contents), `recovering-replica`
/// (the last replica starts mid-state-transfer — requires `k >= 1`; the
/// explorer interleaves its rejoin with ordering and view changes).
#[derive(Clone, Debug)]
pub struct Scenario {
    /// Behavior-assignment name (see type docs).
    pub name: String,
    /// Byzantine budget.
    pub f: u32,
    /// Recovering budget.
    pub k: u32,
    /// Number of distinct pre-signed client ops schedules may inject.
    pub ops: u32,
}

impl Scenario {
    /// Builds a scenario, validating the name.
    pub fn named(name: &str, f: u32, k: u32, ops: u32) -> Result<Scenario, String> {
        match name {
            "recovering-replica" if k == 0 => Err(
                "scenario \"recovering-replica\" needs k >= 1 (the recovering \
                 replica spends the k budget)"
                    .to_string(),
            ),
            "honest"
            | "equivocating-leader"
            | "leader-delay"
            | "mute-replica"
            | "po-equivocation"
            | "recovering-replica" => Ok(Scenario {
                name: name.to_string(),
                f,
                k,
                ops,
            }),
            other => Err(format!("unknown scenario \"{other}\"")),
        }
    }

    /// Cluster size `3f + 2k + 1`.
    pub fn n(&self) -> u32 {
        3 * self.f + 2 * self.k + 1
    }

    /// The behavior replica `i` runs.
    pub fn behavior(&self, i: u32) -> ByzBehavior {
        let n = self.n();
        match self.name.as_str() {
            "equivocating-leader" if i == 0 => ByzBehavior::Equivocate,
            "leader-delay" if i == 0 => ByzBehavior::LeaderDelay(Span::millis(100)),
            "mute-replica" if i == n - 1 => ByzBehavior::Mute,
            "po-equivocation" if i == 1 => ByzBehavior::EquivocatePo,
            _ => ByzBehavior::Honest,
        }
    }

    /// Whether replica `i` starts mid-state-transfer (recovering mode).
    pub fn recovering(&self, i: u32) -> bool {
        self.name == "recovering-replica" && i == self.n() - 1
    }

    /// Indices of replicas whose behavior counts against `f` (exempted
    /// from the invariant checker's correct-replica comparisons).
    pub fn faulty(&self) -> BTreeSet<u32> {
        (0..self.n())
            .filter(|i| self.behavior(*i).is_byzantine())
            .collect()
    }

    /// Which replica receives injected op `op`: round-robin over the
    /// *honest* replicas, so Byzantine originators never gate liveness.
    pub fn op_target(&self, op: u32) -> u32 {
        let honest: Vec<u32> = (0..self.n())
            .filter(|i| !self.behavior(*i).is_byzantine())
            .collect();
        honest[op as usize % honest.len()]
    }
}

/// Per-tag exploration budgets for the exhaustive driver.
///
/// Timer fires blow up the search space without commuting (each advances
/// the clock), so the exhaustive driver bounds how often each tag may fire
/// per replica along one schedule. `max_states` caps total distinct states
/// (the run reports whether the frontier was exhausted or the cap hit).
#[derive(Clone, Debug)]
pub struct Bounds {
    /// Maximum schedule length explored.
    pub max_depth: usize,
    /// Stop after visiting this many distinct states.
    pub max_states: u64,
    /// tag -> how many times each replica may fire it (absent = never).
    pub timer_budget: BTreeMap<u64, u32>,
}

impl Bounds {
    /// Defaults for the tiny n=4 config: enough PO-flush/summary/
    /// pre-prepare rounds to order a few ops, one progress expiry per
    /// replica to reach view changes, no pings.
    pub fn tiny() -> Bounds {
        let mut timer_budget = BTreeMap::new();
        timer_budget.insert(TIMER_PO_FLUSH, 2);
        timer_budget.insert(TIMER_SUMMARY, 2);
        timer_budget.insert(TIMER_PRE_PREPARE, 2);
        timer_budget.insert(TIMER_PROGRESS, 1);
        Bounds {
            max_depth: 14,
            max_states: 250_000,
            timer_budget,
        }
    }

    /// [`Bounds::tiny`] plus the state-request timer, so the
    /// `recovering-replica` scenario can drive its rejoin (repeated
    /// state requests, and past the genesis deadline the fallback that
    /// clears the recovering flag) inside the explored schedule.
    pub fn recovery() -> Bounds {
        let mut bounds = Bounds::tiny();
        bounds.timer_budget.insert(TIMER_STATE_REQ, 3);
        bounds
    }
}

/// Immutable per-run context: config, cached keys, pre-signed ops.
///
/// Key derivation (`KeyStore::for_nodes`) costs tens of milliseconds;
/// exploration replays thousands of clusters, so everything derivable is
/// computed once here and shared by every [`Cluster`] the harness builds.
pub struct Harness {
    /// The scenario every built cluster runs.
    pub scenario: Scenario,
    cfg: PrimeConfig,
    keystore: Arc<KeyStore>,
    signers: Vec<Signer>,
    op_frames: Vec<Bytes>,
}

impl Harness {
    /// Prepares keys and pre-signed op frames for `scenario`. Mock
    /// signatures keep replays cheap; the protocol logic exercised is
    /// identical (see `spire_crypto::mock_sign64`).
    pub fn new(scenario: Scenario) -> Harness {
        let cfg = PrimeConfig::new(scenario.f, scenario.k);
        let material = KeyMaterial::new([7u8; 32]);
        let keystore = Arc::new(KeyStore::for_nodes(&material, cfg.client_key_base + 4));
        let signers: Vec<Signer> = (0..cfg.n)
            .map(|i| Signer::new(material.signing_key(NodeId(cfg.replica_key_base + i)), true))
            .collect();
        let client_signer = Signer::new(material.signing_key(NodeId(cfg.client_key_base)), true);
        let op_frames: Vec<Bytes> = (0..scenario.ops)
            .map(|i| {
                let payload = Bytes::from(format!("op-{i}"));
                let op = ClientOp::signed(ClientId(0), (i + 1) as u64, payload, &client_signer);
                PrimeMsg::Op(op).encode()
            })
            .collect();
        Harness {
            scenario,
            cfg,
            keystore,
            signers,
            op_frames,
        }
    }

    /// The Prime configuration clusters run under.
    pub fn cfg(&self) -> &PrimeConfig {
        &self.cfg
    }

    /// Builds a fresh cluster at time zero with every replica started
    /// (initial timers armed). Deterministic: two builds from the same
    /// harness are bit-for-bit identical.
    pub fn build(&self) -> Cluster<'_> {
        let n = self.cfg.n;
        let replica_pids: Vec<ProcessId> = (0..n).map(ProcessId).collect();
        let client_pid = ProcessId(n);
        let inspection = Inspection::new();
        let faulty = Arc::new(Mutex::new(self.scenario.faulty()));
        let checker = InvariantChecker::new(inspection.clone(), faulty, n);
        let mut replicas = Vec::with_capacity(n as usize);
        for i in 0..n {
            let mut clients = BTreeMap::new();
            clients.insert(0u32, client_pid);
            let net = DirectNet {
                replicas: replica_pids.clone(),
                clients,
            };
            let replica = Replica::new(
                self.cfg.clone(),
                ReplicaId(i),
                self.scenario.behavior(i),
                Arc::clone(&self.keystore),
                self.signers[i as usize].clone(),
                Box::new(net),
                Box::new(HashChainApp::new()),
                self.scenario.recovering(i),
            )
            .with_inspection(inspection.clone());
            replicas.push(ModelReplica::new(
                replica,
                ProcessId(i),
                0x5eed_0000 + i as u64,
            ));
        }
        let mut cluster = Cluster {
            harness: self,
            now: Time::ZERO,
            replicas,
            pending: BTreeMap::new(),
            emitted: BTreeMap::new(),
            emit_seq: 0,
            timers: BTreeMap::new(),
            cancel_index: BTreeMap::new(),
            fired: BTreeMap::new(),
            injected: vec![false; self.scenario.ops as usize],
            replies: 0,
            steps: 0,
            schedule: Vec::new(),
            checker,
            inspection,
        };
        for i in 0..n {
            cluster.step_replica(i, Input::Start);
        }
        cluster.checker.check();
        cluster
    }

    /// Rebuilds a cluster and applies `events` in order (unreplayable
    /// choices are skipped as no-ops). This is the replay primitive the
    /// explorer, shrinker, and `--replay` all share.
    pub fn replay(&self, events: &[Choice]) -> Cluster<'_> {
        let mut cluster = self.build();
        for choice in events {
            cluster.apply(choice);
        }
        cluster
    }
}

/// A running model cluster plus its explicit nondeterminism pool.
pub struct Cluster<'h> {
    harness: &'h Harness,
    /// The virtual clock: max over all timer due-times fired so far.
    pub now: Time,
    replicas: Vec<ModelReplica>,
    /// key -> (emission order, frame bytes).
    pending: BTreeMap<MsgKey, (u64, Bytes)>,
    /// (from, to, digest) -> emission count, for `MsgKey::nth`.
    emitted: BTreeMap<(u32, u32, u64), u32>,
    emit_seq: u64,
    /// (replica, tag) -> (due time, raw backend timer id).
    timers: BTreeMap<(u32, u64), (Time, u64)>,
    /// (replica, raw id) -> tag, so Effect::CancelTimer can find its timer.
    cancel_index: BTreeMap<(u32, u64), u64>,
    /// (replica, tag) -> times fired, for exhaustive budgets.
    fired: BTreeMap<(u32, u64), u32>,
    injected: Vec<bool>,
    /// Frames addressed to the client process (replies) seen so far.
    pub replies: u64,
    /// Applied (non-no-op) choices.
    pub steps: u64,
    /// The applied schedule, replayable via [`Harness::replay`].
    pub schedule: Vec<Choice>,
    /// The safety oracle, ticked after every applied choice.
    pub checker: InvariantChecker,
    /// The shared inspection registry replicas publish into.
    pub inspection: Inspection,
}

impl Cluster<'_> {
    fn n(&self) -> u32 {
        self.harness.cfg.n
    }

    /// Runs one input through replica `i` and absorbs the effects into the
    /// nondeterminism pool.
    fn step_replica(&mut self, i: u32, input: Input) {
        let effects = self.replicas[i as usize].step(self.now, input);
        for effect in effects {
            match effect {
                Effect::Send { to, bytes } => {
                    if to.0 < self.n() {
                        self.enqueue(i, to.0, bytes);
                    } else {
                        self.replies += 1;
                    }
                }
                Effect::SetTimer { delay, tag, id } => {
                    // Re-arming a live (replica, tag) replaces it; the old
                    // raw id becomes stale and must leave the cancel index.
                    if let Some((_, old_raw)) =
                        self.timers.insert((i, tag), (self.now + delay, id.raw()))
                    {
                        self.cancel_index.remove(&(i, old_raw));
                    }
                    self.cancel_index.insert((i, id.raw()), tag);
                }
                Effect::CancelTimer { id } => {
                    if let Some(tag) = self.cancel_index.remove(&(i, id.raw())) {
                        self.timers.remove(&(i, tag));
                    }
                }
            }
        }
    }

    fn enqueue(&mut self, from: u32, to: u32, bytes: Bytes) {
        let digest = fnv64(&bytes);
        let nth = self.emitted.entry((from, to, digest)).or_insert(0);
        let key = MsgKey {
            from,
            to,
            digest,
            nth: *nth,
        };
        *nth += 1;
        self.emit_seq += 1;
        self.pending.insert(key, (self.emit_seq, bytes));
    }

    /// Applies one choice. Returns `false` (a recorded no-op is *not*
    /// appended to the schedule) when the choice references an op already
    /// injected, a message no longer pending, or a timer not armed — the
    /// property that makes shrinking by plain event removal sound.
    pub fn apply(&mut self, choice: &Choice) -> bool {
        let applied = match choice {
            Choice::Inject { op } => {
                let idx = *op as usize;
                if idx >= self.injected.len() || self.injected[idx] {
                    false
                } else {
                    self.injected[idx] = true;
                    let to = self.harness.scenario.op_target(*op);
                    let from = ProcessId(self.n());
                    let bytes = self.harness.op_frames[idx].clone();
                    self.step_replica(to, Input::Deliver { from, bytes });
                    true
                }
            }
            Choice::Deliver { key } => {
                if let Some((_, bytes)) = self.pending.remove(key) {
                    let from = ProcessId(key.from);
                    self.step_replica(key.to, Input::Deliver { from, bytes });
                    true
                } else {
                    false
                }
            }
            Choice::Duplicate { key } => {
                if let Some((_, bytes)) = self.pending.get(key) {
                    let bytes = bytes.clone();
                    self.enqueue(key.from, key.to, bytes);
                    true
                } else {
                    false
                }
            }
            Choice::Drop { key } => self.pending.remove(key).is_some(),
            Choice::Fire { replica, tag } => {
                if let Some((due, raw)) = self.timers.remove(&(*replica, *tag)) {
                    self.cancel_index.remove(&(*replica, raw));
                    if due > self.now {
                        self.now = due;
                    }
                    *self.fired.entry((*replica, *tag)).or_insert(0) += 1;
                    self.step_replica(*replica, Input::Timer { tag: *tag });
                    true
                } else {
                    false
                }
            }
        };
        if applied {
            self.steps += 1;
            self.schedule.push(choice.clone());
            self.checker.check();
        }
        applied
    }

    /// Every currently-applicable choice under the exhaustive bounds:
    /// uninjected ops, every pending delivery, and every armed timer whose
    /// tag still has budget. (Drops and duplicates are not enumerated —
    /// a message never delivered within the horizon *is* a drop, and
    /// duplication is the randomized driver's job.)
    pub fn enabled_choices(&self, bounds: &Bounds) -> Vec<Choice> {
        let mut out = Vec::new();
        for (op, injected) in self.injected.iter().enumerate() {
            if !injected {
                out.push(Choice::Inject { op: op as u32 });
            }
        }
        for key in self.pending.keys() {
            out.push(Choice::Deliver { key: key.clone() });
        }
        for (replica, tag) in self.timers.keys() {
            let budget = bounds.timer_budget.get(tag).copied().unwrap_or(0);
            let used = self.fired.get(&(*replica, *tag)).copied().unwrap_or(0);
            if used < budget {
                out.push(Choice::Fire {
                    replica: *replica,
                    tag: *tag,
                });
            }
        }
        out
    }

    /// Pending message keys in key order (deterministic).
    pub fn pending_keys(&self) -> Vec<MsgKey> {
        self.pending.keys().cloned().collect()
    }

    /// The pending message emitted longest ago, if any.
    pub fn oldest_pending(&self) -> Option<MsgKey> {
        self.pending
            .iter()
            .min_by_key(|(_, (seq, _))| *seq)
            .map(|(key, _)| key.clone())
    }

    /// Armed timers as `(replica, tag, due)`, excluding pings (pure noise
    /// for exploration), ordered by due time then key.
    pub fn armed_timers(&self) -> Vec<(u32, u64, Time)> {
        let mut timers: Vec<(u32, u64, Time)> = self
            .timers
            .iter()
            .filter(|((_, tag), _)| *tag != TIMER_PING)
            .map(|((replica, tag), (due, _))| (*replica, *tag, *due))
            .collect();
        timers.sort_by_key(|(replica, tag, due)| (*due, *replica, *tag));
        timers
    }

    /// Ops not yet injected.
    pub fn uninjected_ops(&self) -> Vec<u32> {
        self.injected
            .iter()
            .enumerate()
            .filter(|(_, done)| !**done)
            .map(|(op, _)| op as u32)
            .collect()
    }

    /// A 64-bit hash of the whole explorable state: the virtual clock,
    /// every replica's protocol-state digest, the pending-message multiset
    /// (content-addressed, so two same-bytes duplicates hash alike), armed
    /// timers with due times, and the injection bitmap. Two schedules
    /// reaching equal hashes are merged by the exhaustive driver.
    pub fn state_hash(&self) -> u64 {
        let mut h = Hasher::new();
        h.u64(self.now.0);
        for replica in &self.replicas {
            h.u64(replica.state_digest());
        }
        // Aggregate pending by content triple so duplicate copies form a
        // multiset (delivering either copy is the same transition).
        let mut multiset: BTreeMap<(u32, u32, u64), u64> = BTreeMap::new();
        for key in self.pending.keys() {
            *multiset.entry((key.from, key.to, key.digest)).or_insert(0) += 1;
        }
        h.u64(multiset.len() as u64);
        for ((from, to, digest), count) in &multiset {
            h.u64(*from as u64);
            h.u64(*to as u64);
            h.u64(*digest);
            h.u64(*count);
        }
        h.u64(self.timers.len() as u64);
        for ((replica, tag), (due, _)) in &self.timers {
            h.u64(*replica as u64);
            h.u64(*tag);
            h.u64(due.0);
        }
        for injected in &self.injected {
            h.u64(*injected as u64);
        }
        h.finish()
    }

    /// Distinct violation kinds the checker has recorded so far.
    pub fn violation_kinds(&self) -> Vec<String> {
        let mut kinds: Vec<String> = self
            .checker
            .violations()
            .iter()
            .map(|v| v.kind.to_string())
            .collect();
        kinds.sort();
        kinds.dedup();
        kinds
    }

    /// Read access to replica `i`'s model wrapper.
    pub fn replica(&self, i: u32) -> &ModelReplica {
        &self.replicas[i as usize]
    }
}

struct Hasher(u64);

impl Hasher {
    fn new() -> Hasher {
        Hasher(0xcbf2_9ce4_8422_2325)
    }

    fn u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn finish(self) -> u64 {
        self.0
    }
}
