//! Cross-shard 2PC-over-BFT schedule exploration.
//!
//! `spire-shard`'s [`XCoord`] is a pure machine — inputs are reply frames
//! and timer pops, outputs are [`XAction`] values — and [`XParticipant`]
//! is the deterministic kernel a group's replicated application embeds.
//! This module drives one coordinator against model participant groups
//! under explicit adversarial schedules, with the real wire formats in
//! between: prepares travel as signed `PrimeMsg::Op` frames, votes come
//! back as genuinely mock-signed `PrimeMsg::Reply` frames (so the f+1
//! prepare certificate is *actually verified* by participants), and the
//! [`XShardLedger`] checks cross-shard atomicity after every choice.
//!
//! Each model replica stands in for one vote-casting member of a group.
//! Within a group the real system's BFT ordering keeps replicas in
//! lockstep, so within-group divergence here can only arise from the
//! coordinator sending *conflicting decisions* — which is exactly the
//! class of bug the explorer hunts (see the `seeded-xshard-bug` feature
//! of `spire-shard`).
//!
//! The module reuses the crate's [`Choice`]/[`MsgKey`] schedule grammar
//! and the [`Artifact`](crate::Artifact) replay format (scenario names
//! start with `"xshard"`), with its own ddmin shrinker — the base
//! drivers are typed to the Prime harness.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;
use std::time::Instant;

use bytes::Bytes;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use spire_crypto::keys::{KeyMaterial, Signer};
use spire_crypto::{KeyStore, NodeId};
use spire_prime::msg::{decode_enclosed, ClientOp, PrimeMsg};
use spire_prime::{ClientId, ReplicaId};
use spire_shard::msg::cmd_kind;
use spire_shard::{
    CertVerifier, ShardCmd, XAction, XCoord, XCoordConfig, XParticipant, XShardLedger,
    COORD_CLIENT_ID, SHARD_KEY_STRIDE,
};
use spire_sim::{Time, WireWriter};

use crate::exhaustive::FoundViolation;
use crate::fnv64;
use crate::random::{RandomParams, RandomReport};
use crate::schedule::{Choice, MsgKey};

pub use spire_shard::SEEDED_XSHARD_BUG_ACTIVE;

/// Replica key base within a group's key space (mirrors the deployment).
const REPLICA_BASE: u32 = 1000;
/// Client key base within a group's key space (mirrors the deployment).
const CLIENT_BASE: u32 = 2000;

/// A cross-shard exploration scenario: how many groups, how many
/// vote-casting model replicas each, and how many transactions the
/// schedule may inject.
#[derive(Clone, Debug)]
pub struct XScenario {
    /// Scenario name (must start with `"xshard"` for artifact routing).
    pub name: String,
    /// Per-group fault threshold; certificates need `f + 1` votes.
    pub f: u32,
    /// Participant groups.
    pub groups: u32,
    /// Model replicas per group (`2f + 1` vote casters).
    pub reps: u32,
    /// Transactions available to `Inject`.
    pub ops: u32,
}

impl XScenario {
    /// Looks up a named scenario. `"xshard-commit"` is the canonical
    /// two-group commit workload.
    pub fn named(name: &str, ops: u32) -> Result<XScenario, String> {
        match name {
            "xshard-commit" => Ok(XScenario {
                name: name.to_string(),
                f: 1,
                groups: 2,
                reps: 3,
                ops: ops.max(1),
            }),
            other => Err(format!(
                "unknown xshard scenario {other:?} (try \"xshard-commit\")"
            )),
        }
    }
}

/// Immutable per-scenario state: keys, signers, and the pre-built
/// transaction set. Clusters borrow it, so episodes are cheap.
pub struct XHarness {
    /// The scenario this harness drives.
    pub scenario: XScenario,
    keystore: Arc<KeyStore>,
    /// Coordinator client signer in each group's key space.
    client_signers: Vec<Signer>,
    /// Reply signer per model replica, indexed `g * reps + r`.
    replica_signers: Vec<Signer>,
    /// Transaction `i` spans every group, toggling breaker `i`.
    txs: Vec<Vec<ShardCmd>>,
}

impl XHarness {
    /// Builds the harness: deterministic key material, one signer per
    /// role, and `ops` cross-shard transactions spanning all groups.
    pub fn new(scenario: XScenario) -> XHarness {
        let material = KeyMaterial::new([0x5A; 32]);
        let keystore = Arc::new(KeyStore::for_nodes(
            &material,
            SHARD_KEY_STRIDE * scenario.groups,
        ));
        let client_signers = (0..scenario.groups)
            .map(|g| {
                let node = NodeId(g * SHARD_KEY_STRIDE + CLIENT_BASE + COORD_CLIENT_ID);
                Signer::new(material.signing_key(node), true)
            })
            .collect();
        let replica_signers = (0..scenario.groups)
            .flat_map(|g| {
                (0..scenario.reps).map(move |r| NodeId(g * SHARD_KEY_STRIDE + REPLICA_BASE + r))
            })
            .map(|node| Signer::new(material.signing_key(node), true))
            .collect();
        let txs = (0..scenario.ops)
            .map(|i| {
                (0..scenario.groups)
                    .map(|g| ShardCmd {
                        shard: g,
                        rtu: i,
                        kind: if i % 2 == 0 {
                            cmd_kind::OPEN_BREAKER
                        } else {
                            cmd_kind::CLOSE_BREAKER
                        },
                        a: 0,
                        b: 0,
                    })
                    .collect()
            })
            .collect();
        XHarness {
            scenario,
            keystore,
            client_signers,
            replica_signers,
            txs,
        }
    }

    /// A fresh cluster at genesis.
    pub fn build(&self) -> XCluster<'_> {
        let scenario = &self.scenario;
        XCluster {
            harness: self,
            coord: XCoord::new(XCoordConfig {
                groups: scenario.groups,
                f: scenario.f,
                ..XCoordConfig::default()
            }),
            parts: (0..scenario.groups)
                .flat_map(|g| (0..scenario.reps).map(move |_| XParticipant::new(g)))
                .collect(),
            verifier: CertVerifier {
                keystore: self.keystore.clone(),
                stride: SHARD_KEY_STRIDE,
                replica_base: REPLICA_BASE,
                client: ClientId(COORD_CLIENT_ID),
                f: scenario.f,
                mock: true,
            },
            ledger: XShardLedger::new(),
            pending: BTreeMap::new(),
            emitted: BTreeMap::new(),
            next_seq: 0,
            timers: BTreeMap::new(),
            now: Time::ZERO,
            injected: BTreeSet::new(),
            completed: Vec::new(),
            violations: Vec::new(),
            schedule: Vec::new(),
            steps: 0,
        }
    }

    /// Replays an explicit schedule from genesis (no-op choices skipped).
    pub fn replay(&self, events: &[Choice]) -> XCluster<'_> {
        let mut cluster = self.build();
        for choice in events {
            cluster.apply(choice);
        }
        cluster
    }
}

/// One explorable cross-shard system state: the coordinator machine, the
/// model participants, the message pool, and the atomicity ledger.
pub struct XCluster<'a> {
    harness: &'a XHarness,
    coord: XCoord,
    /// Participant kernels indexed by process id `g * reps + r`.
    parts: Vec<XParticipant>,
    verifier: CertVerifier,
    /// The online atomicity oracle.
    pub ledger: XShardLedger,
    pending: BTreeMap<MsgKey, (u64, Bytes)>,
    emitted: BTreeMap<(u32, u32, u64), u32>,
    next_seq: u64,
    /// Armed coordinator retry timers: xid -> due time.
    timers: BTreeMap<u64, Time>,
    now: Time,
    injected: BTreeSet<u32>,
    /// Finished transactions as `(xid, committed)`.
    pub completed: Vec<(u64, bool)>,
    /// Drained ledger violation texts, in discovery order.
    pub violations: Vec<String>,
    /// The applied (effective) schedule so far.
    pub schedule: Vec<Choice>,
    /// Applied choice count.
    pub steps: usize,
}

impl XCluster<'_> {
    /// Process id of the coordinator (participants are `0..groups*reps`).
    pub fn coord_pid(&self) -> u32 {
        self.harness.scenario.groups * self.harness.scenario.reps
    }

    /// True while the atomicity invariant holds.
    pub fn ok(&self) -> bool {
        self.ledger.ok()
    }

    /// Stable short labels for the violations seen so far.
    pub fn violation_kinds(&self) -> Vec<String> {
        let mut kinds: Vec<String> = Vec::new();
        for text in &self.violations {
            let kind = if text.contains("replica divergence") {
                "xshard-divergence"
            } else {
                "xshard-atomicity"
            };
            if !kinds.iter().any(|k| k == kind) {
                kinds.push(kind.to_string());
            }
        }
        kinds
    }

    /// Transaction indices not yet injected.
    pub fn uninjected_ops(&self) -> Vec<u32> {
        (0..self.harness.scenario.ops)
            .filter(|op| !self.injected.contains(op))
            .collect()
    }

    /// Every pending message key.
    pub fn pending_keys(&self) -> Vec<MsgKey> {
        self.pending.keys().cloned().collect()
    }

    /// The pending message enqueued earliest (FIFO delivery).
    pub fn oldest_pending(&self) -> Option<MsgKey> {
        self.pending
            .iter()
            .min_by_key(|(_, (seq, _))| *seq)
            .map(|(key, _)| key.clone())
    }

    /// Armed timers as `(process, tag, due)`, earliest-due first. Only
    /// the coordinator owns timers.
    pub fn armed_timers(&self) -> Vec<(u32, u64, Time)> {
        let coord = self.coord_pid();
        let mut timers: Vec<(u32, u64, Time)> = self
            .timers
            .iter()
            .map(|(&xid, &due)| (coord, xid, due))
            .collect();
        timers.sort_by_key(|&(_, _, due)| due);
        timers
    }

    /// Applies one choice; returns false (and changes nothing) when the
    /// choice references state that no longer exists — the no-op
    /// degradation that keeps shrinking sound.
    pub fn apply(&mut self, choice: &Choice) -> bool {
        let applied = match choice {
            Choice::Inject { op } => self.inject(*op),
            Choice::Deliver { key } => self.deliver(key),
            Choice::Duplicate { key } => self.duplicate(key),
            Choice::Drop { key } => self.pending.remove(key).is_some(),
            Choice::Fire { replica, tag } => self.fire(*replica, *tag),
        };
        if applied {
            self.schedule.push(choice.clone());
            self.steps += 1;
            self.violations.extend(self.ledger.drain_violations());
        }
        applied
    }

    fn inject(&mut self, op: u32) -> bool {
        if op >= self.harness.scenario.ops || !self.injected.insert(op) {
            return false;
        }
        let cmds = self.harness.txs[op as usize].clone();
        let (_, actions) = self.coord.begin(cmds, false, self.now);
        self.handle(actions);
        true
    }

    fn deliver(&mut self, key: &MsgKey) -> bool {
        let Some((_, bytes)) = self.pending.remove(key) else {
            return false;
        };
        if key.to == self.coord_pid() {
            // A reply frame travelling replica -> coordinator.
            let Ok(PrimeMsg::Reply {
                replica,
                client,
                cseq,
                result,
                ..
            }) = decode_enclosed(&bytes)
            else {
                return true;
            };
            if client != ClientId(COORD_CLIENT_ID) {
                return true;
            }
            let group = key.from / self.harness.scenario.reps;
            let actions = self.coord.on_reply(group, replica.0, cseq, &result, &bytes);
            self.handle(actions);
        } else {
            // A signed client op travelling coordinator -> replica.
            let Ok(PrimeMsg::Op(op)) = decode_enclosed(&bytes) else {
                return true;
            };
            let Ok(msg) = spire_shard::ShardMsg::decode(&op.payload) else {
                return true;
            };
            let pid = key.to as usize;
            let group = key.to / self.harness.scenario.reps;
            let rep = key.to % self.harness.scenario.reps;
            let outcome = self.parts[pid].execute(&msg, &self.verifier);
            if let Some(d) = outcome.decision {
                self.ledger
                    .record(d.xid, group, d.shards.len() as u32, d.decision);
            }
            // Vote back with a genuinely signed reply frame: the
            // coordinator keeps the raw bytes, and participants verify
            // the resulting certificate against the key store.
            let mut reply = PrimeMsg::Reply {
                replica: ReplicaId(rep),
                client: op.client,
                cseq: op.cseq,
                result: Bytes::from(outcome.reply),
                sig: [0; 64],
            };
            let mut scratch = WireWriter::new();
            reply.sign_with(&self.harness.replica_signers[pid], &mut scratch);
            self.enqueue(key.to, self.coord_pid(), reply.encode());
        }
        true
    }

    fn duplicate(&mut self, key: &MsgKey) -> bool {
        let Some(bytes) = self.pending.get(key).map(|(_, b)| b.clone()) else {
            return false;
        };
        self.enqueue(key.from, key.to, bytes);
        true
    }

    fn fire(&mut self, replica: u32, tag: u64) -> bool {
        if replica != self.coord_pid() {
            return false;
        }
        let Some(due) = self.timers.remove(&tag) else {
            return false;
        };
        if due > self.now {
            self.now = due;
        }
        let actions = self.coord.on_timer(tag);
        self.handle(actions);
        true
    }

    fn handle(&mut self, actions: Vec<XAction>) {
        for action in actions {
            match action {
                XAction::Send {
                    group,
                    cseq,
                    payload,
                } => {
                    let op = ClientOp::signed(
                        ClientId(COORD_CLIENT_ID),
                        cseq,
                        payload,
                        &self.harness.client_signers[group as usize],
                    );
                    let frame = PrimeMsg::Op(op).encode();
                    let coord = self.coord_pid();
                    for rep in 0..self.harness.scenario.reps {
                        let to = group * self.harness.scenario.reps + rep;
                        self.enqueue(coord, to, frame.clone());
                    }
                }
                XAction::SetTimer { xid, delay } => {
                    self.timers.insert(xid, self.now + delay);
                }
                XAction::Done { xid, committed, .. } => {
                    self.timers.remove(&xid);
                    self.completed.push((xid, committed));
                }
            }
        }
    }

    fn enqueue(&mut self, from: u32, to: u32, bytes: Bytes) {
        let digest = fnv64(&bytes);
        let nth = self.emitted.entry((from, to, digest)).or_insert(0);
        let key = MsgKey {
            from,
            to,
            digest,
            nth: *nth,
        };
        *nth += 1;
        self.next_seq += 1;
        self.pending.insert(key, (self.next_seq, bytes));
    }
}

/// Replays `events` from genesis; returns the violation kinds if the
/// schedule still breaks atomicity, `None` if it is now clean.
pub fn reproduces(harness: &XHarness, events: &[Choice]) -> Option<Vec<String>> {
    let cluster = harness.replay(events);
    if cluster.ok() {
        None
    } else {
        Some(cluster.violation_kinds())
    }
}

/// Greedy ddmin over a failing schedule (same shape as
/// [`crate::shrink::shrink`], retargeted at the cross-shard cluster).
pub fn shrink(harness: &XHarness, events: &[Choice]) -> Vec<Choice> {
    debug_assert!(
        reproduces(harness, events).is_some(),
        "shrink() requires a failing schedule"
    );
    let mut current: Vec<Choice> = harness.replay(events).schedule;
    loop {
        let before = current.len();
        let mut chunk = (current.len() / 2).max(1);
        loop {
            let mut start = 0;
            while start < current.len() {
                let end = (start + chunk).min(current.len());
                let mut candidate = current.clone();
                candidate.drain(start..end);
                if !candidate.is_empty() && reproduces(harness, &candidate).is_some() {
                    current = candidate;
                } else {
                    start = end;
                }
            }
            if chunk == 1 {
                break;
            }
            chunk = (chunk / 2).max(1);
        }
        current = harness.replay(&current).schedule;
        if current.len() >= before {
            break;
        }
    }
    current
}

fn episode_seed(master: u64, episode: u64) -> u64 {
    let mut z = master ^ episode.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Seeded randomized exploration of cross-shard schedules; stops at the
/// first atomicity violation, the episode budget, or the wall limit.
/// `max_executed` in the report counts completed transactions.
pub fn explore(harness: &XHarness, params: &RandomParams) -> RandomReport {
    let mut report = RandomReport::default();
    let started = Instant::now();
    for episode in 0..params.episodes {
        if let Some(limit) = params.wall_limit {
            if started.elapsed() >= limit {
                break;
            }
        }
        let mut rng = StdRng::seed_from_u64(episode_seed(params.seed, episode));
        let mut cluster = harness.build();
        let mut applied = 0usize;
        while applied < params.steps_per_episode {
            let choices = pick(&mut rng, &cluster);
            if choices.is_empty() {
                break;
            }
            for choice in choices {
                if cluster.apply(&choice) {
                    applied += 1;
                    report.steps += 1;
                }
                if !cluster.ok() {
                    report.episodes = episode + 1;
                    report.max_executed = report.max_executed.max(cluster.completed.len() as u64);
                    report.violation = Some(FoundViolation {
                        kinds: cluster.violation_kinds(),
                        schedule: cluster.schedule,
                    });
                    return report;
                }
            }
        }
        report.max_executed = report.max_executed.max(cluster.completed.len() as u64);
        report.episodes = episode + 1;
    }
    report
}

/// Explores across bumped seeds, shrinking every violation and keeping
/// the smallest; stops early at `target_len` events.
pub fn hunt(
    harness: &XHarness,
    base: &RandomParams,
    rounds: u64,
    target_len: usize,
) -> Option<FoundViolation> {
    let started = Instant::now();
    let mut best: Option<FoundViolation> = None;
    for round in 0..rounds {
        let mut params = base.clone();
        params.seed = base.seed.wrapping_add(round);
        if let Some(limit) = base.wall_limit {
            let left = limit.saturating_sub(started.elapsed());
            if left.is_zero() {
                break;
            }
            params.wall_limit = Some(left);
        }
        let Some(found) = explore(harness, &params).violation else {
            continue;
        };
        let shrunk = shrink(harness, &found.schedule);
        let kinds = reproduces(harness, &shrunk).expect("shrunk schedule must still reproduce");
        if best
            .as_ref()
            .map(|b| shrunk.len() < b.schedule.len())
            .unwrap_or(true)
        {
            best = Some(FoundViolation {
                schedule: shrunk,
                kinds,
            });
        }
        if best
            .as_ref()
            .map(|b| b.schedule.len() <= target_len)
            .unwrap_or(false)
        {
            break;
        }
    }
    best
}

/// Weighted adversarial choice, biased toward progress (FIFO delivery)
/// with reorder / duplicate / drop / timer-skew minorities. Timers weigh
/// more than in the Prime driver: coordinator retries (and the decision
/// deadlines they carry) are where 2PC bugs live.
fn pick(rng: &mut StdRng, cluster: &XCluster<'_>) -> Vec<Choice> {
    let pending = cluster.pending_keys();
    let timers = cluster.armed_timers();
    let ops = cluster.uninjected_ops();
    let roll: u32 = rng.gen_range(0..100);
    match roll {
        0..=9 if !ops.is_empty() => {
            vec![Choice::Inject {
                op: ops[rng.gen_range(0..ops.len())],
            }]
        }
        10..=49 if !pending.is_empty() => {
            vec![Choice::Deliver {
                key: cluster.oldest_pending().expect("pending nonempty"),
            }]
        }
        50..=64 if !pending.is_empty() => {
            vec![Choice::Deliver {
                key: pending[rng.gen_range(0..pending.len())].clone(),
            }]
        }
        65..=81 if !timers.is_empty() => {
            let (replica, tag, _) = timers[0];
            vec![Choice::Fire { replica, tag }]
        }
        82..=85 if !pending.is_empty() => {
            vec![Choice::Duplicate {
                key: pending[rng.gen_range(0..pending.len())].clone(),
            }]
        }
        86..=95 if !pending.is_empty() => {
            vec![Choice::Drop {
                key: pending[rng.gen_range(0..pending.len())].clone(),
            }]
        }
        96..=99 if !timers.is_empty() => {
            let (replica, tag, _) = timers[rng.gen_range(0..timers.len())];
            vec![Choice::Fire { replica, tag }]
        }
        _ => fallback(cluster),
    }
}

fn fallback(cluster: &XCluster<'_>) -> Vec<Choice> {
    if let Some(key) = cluster.oldest_pending() {
        return vec![Choice::Deliver { key }];
    }
    if let Some(&(replica, tag, _)) = cluster.armed_timers().first() {
        return vec![Choice::Fire { replica, tag }];
    }
    if let Some(&op) = cluster.uninjected_ops().first() {
        return vec![Choice::Inject { op }];
    }
    Vec::new()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn harness(ops: u32) -> XHarness {
        XHarness::new(XScenario::named("xshard-commit", ops).unwrap())
    }

    /// FIFO-drive everything to completion: inject, then deliver oldest /
    /// fire earliest until quiescent.
    fn drain(cluster: &mut XCluster<'_>, max_steps: usize) {
        for op in cluster.uninjected_ops() {
            cluster.apply(&Choice::Inject { op });
        }
        for _ in 0..max_steps {
            if let Some(key) = cluster.oldest_pending() {
                cluster.apply(&Choice::Deliver { key });
            } else if cluster.completed.len() < cluster.harness.scenario.ops as usize {
                let Some(&(replica, tag, _)) = cluster.armed_timers().first() else {
                    break;
                };
                cluster.apply(&Choice::Fire { replica, tag });
            } else {
                break;
            }
        }
    }

    #[test]
    fn fifo_delivery_commits_atomically() {
        let h = harness(2);
        let mut cluster = h.build();
        drain(&mut cluster, 10_000);
        assert_eq!(cluster.completed.len(), 2, "both transactions finish");
        assert!(cluster.completed.iter().all(|&(_, committed)| committed));
        assert!(cluster.ok());
        let counts = cluster.ledger.counts();
        assert_eq!(counts.committed, 2);
        assert_eq!(counts.violations, 0);
    }

    #[test]
    fn dropping_every_prepare_aborts_cleanly() {
        let h = harness(1);
        let mut cluster = h.build();
        cluster.apply(&Choice::Inject { op: 0 });
        // Starve the prepare phase: drop everything, fire every retry.
        for _ in 0..40 {
            for key in cluster.pending_keys() {
                cluster.apply(&Choice::Drop { key });
            }
            let Some(&(replica, tag, _)) = cluster.armed_timers().first() else {
                break;
            };
            cluster.apply(&Choice::Fire { replica, tag });
        }
        // Let the aborts through.
        drain(&mut cluster, 1_000);
        assert!(cluster.ok(), "starved prepare must abort atomically");
        assert_eq!(cluster.completed, vec![(1, false)]);
    }

    #[test]
    fn random_exploration_is_clean_on_honest_build() {
        // With the seeded bug compiled in this test would find the
        // violation instead, so it only asserts cleanliness without it.
        if spire_shard::SEEDED_XSHARD_BUG_ACTIVE {
            return;
        }
        let h = harness(2);
        let report = explore(
            &h,
            &RandomParams {
                seed: 7,
                episodes: 40,
                steps_per_episode: 300,
                wall_limit: None,
            },
        );
        assert!(
            report.violation.is_none(),
            "honest build must survive adversarial schedules: {:?}",
            report.violation.as_ref().map(|v| &v.kinds)
        );
        assert!(report.max_executed > 0, "exploration never finished a tx");
    }

    #[test]
    fn replay_is_deterministic() {
        let h = harness(2);
        let mut cluster = h.build();
        drain(&mut cluster, 10_000);
        let schedule = cluster.schedule.clone();
        let replayed = h.replay(&schedule);
        assert_eq!(replayed.steps, cluster.steps);
        assert_eq!(replayed.completed, cluster.completed);
        assert_eq!(replayed.violation_kinds(), cluster.violation_kinds());
    }

    #[cfg(feature = "seeded-xshard-bug")]
    #[test]
    fn seeded_bug_is_found_and_shrinks() {
        let h = harness(2);
        let found = hunt(
            &h,
            &RandomParams {
                seed: 1,
                episodes: 200,
                steps_per_episode: 400,
                wall_limit: Some(std::time::Duration::from_secs(120)),
            },
            8,
            12,
        )
        .expect("the seeded coordinator bug must be reachable");
        assert!(found.kinds.iter().any(|k| k.starts_with("xshard")));
        // The shrunk schedule still reproduces, and stays reasonably small.
        assert!(reproduces(&h, &found.schedule).is_some());
        assert!(
            found.schedule.len() <= 40,
            "shrunk schedule has {} events",
            found.schedule.len()
        );
    }
}
