//! Seeded roundtrip property tests for the cross-shard wire format:
//! every [`ShardMsg`] variant (including certificate-bearing XCommits),
//! [`ReplyCert`] containers, the reply payloads, and the sealed-frame
//! path a cross-shard op takes when a replica link-batches it.
//!
//! Mirrors `crates/prime/tests/msg_roundtrip.rs`: a hand-rolled
//! generator over a seeded `StdRng`, every case addressed by
//! `(variant index, sample index)` under the fixed master seed.

use bytes::Bytes;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use spire_prime::msg::{decode_frame, decode_sealed, seal_frame, ClientOp, Frame, PrimeMsg};
use spire_prime::{ClientId, ReplicaId, ReplyCert};
use spire_shard::msg::{
    cmd_kind, encode_ack, encode_prepared, encode_rejected, parse_reply, ShardCmd, ShardMsg,
    XReply, DECISION_ABORT, DECISION_COMMIT,
};

const MASTER_SEED: u64 = 0x5AAD_0005_EED0;
const SAMPLES_PER_VARIANT: u64 = 50;
const VARIANTS: u64 = 3;

fn digest32(rng: &mut StdRng) -> [u8; 32] {
    let mut d = [0u8; 32];
    rng.fill(&mut d[..]);
    d
}

fn payload(rng: &mut StdRng, max: usize) -> Bytes {
    let len = rng.gen_range(0..=max);
    let mut buf = vec![0u8; len];
    rng.fill(&mut buf[..]);
    Bytes::from(buf)
}

fn shard_cmd(rng: &mut StdRng) -> ShardCmd {
    ShardCmd {
        shard: rng.gen_range(0..16),
        rtu: rng.gen(),
        kind: [
            cmd_kind::OPEN_BREAKER,
            cmd_kind::CLOSE_BREAKER,
            cmd_kind::SET_REGISTER,
        ][rng.gen_range(0..3usize)],
        a: rng.gen(),
        b: rng.gen(),
    }
}

fn shards(rng: &mut StdRng) -> Vec<u32> {
    let n = rng.gen_range(1..6);
    (0..n).map(|_| rng.gen_range(0..64)).collect()
}

fn cmds(rng: &mut StdRng) -> Vec<ShardCmd> {
    let n = rng.gen_range(0..8);
    (0..n).map(|_| shard_cmd(rng)).collect()
}

fn reply_cert(rng: &mut StdRng) -> ReplyCert {
    let frames = rng.gen_range(1..5);
    ReplyCert {
        result: payload(rng, 48),
        frames: (0..frames).map(|_| payload(rng, 96)).collect(),
    }
}

fn gen_msg(rng: &mut StdRng, variant: u64) -> ShardMsg {
    match variant {
        0 => ShardMsg::XPrepare {
            xid: rng.gen(),
            coord_shard: rng.gen_range(0..64),
            ts_us: rng.gen(),
            shards: shards(rng),
            cmds: cmds(rng),
            poison: rng.gen(),
        },
        1 => ShardMsg::XCommit {
            xid: rng.gen(),
            coord_shard: rng.gen_range(0..64),
            ts_us: rng.gen(),
            shards: shards(rng),
            cmds: cmds(rng),
            cert: reply_cert(rng),
        },
        2 => ShardMsg::XAbort {
            xid: rng.gen(),
            coord_shard: rng.gen_range(0..64),
            shards: shards(rng),
        },
        _ => unreachable!("variant index out of range"),
    }
}

#[test]
fn every_variant_roundtrips() {
    for variant in 0..VARIANTS {
        for sample in 0..SAMPLES_PER_VARIANT {
            let mut rng = StdRng::seed_from_u64(MASTER_SEED ^ (variant << 32) ^ sample);
            let msg = gen_msg(&mut rng, variant);
            let encoded = msg.encode();
            assert!(
                ShardMsg::is_shard_op(encoded[0]),
                "variant {variant} sample {sample}: tag not in shard-op range"
            );
            let decoded = ShardMsg::decode(&encoded).unwrap_or_else(|e| {
                panic!("variant {variant} sample {sample} failed to decode: {e:?}")
            });
            assert_eq!(
                decoded, msg,
                "variant {variant} sample {sample} did not roundtrip"
            );
        }
    }
}

#[test]
fn every_truncation_errors_never_panics() {
    for variant in 0..VARIANTS {
        let mut rng = StdRng::seed_from_u64(MASTER_SEED ^ 0x7256_0CA7 ^ variant);
        let msg = gen_msg(&mut rng, variant);
        let encoded = msg.encode();
        for cut in 0..encoded.len() {
            assert!(
                ShardMsg::decode(&encoded[..cut]).is_err(),
                "variant {variant}: truncation at {cut} must error"
            );
        }
        // Trailing garbage is rejected too (canonical frames only).
        let mut extended = encoded.to_vec();
        extended.push(0);
        assert!(ShardMsg::decode(&extended).is_err());
    }
}

#[test]
fn reply_certs_roundtrip_standalone() {
    for sample in 0..SAMPLES_PER_VARIANT {
        let mut rng = StdRng::seed_from_u64(MASTER_SEED ^ 0x0CE2_7000 ^ sample);
        let cert = reply_cert(&mut rng);
        let encoded = cert.encode();
        assert_eq!(
            ReplyCert::decode(&encoded).expect("decodes"),
            cert,
            "sample {sample}"
        );
        for cut in 0..encoded.len() {
            assert!(ReplyCert::decode(&encoded[..cut]).is_err());
        }
    }
}

#[test]
fn reply_payloads_roundtrip() {
    for sample in 0..SAMPLES_PER_VARIANT {
        let mut rng = StdRng::seed_from_u64(MASTER_SEED ^ 0x2E71_1E50 ^ sample);
        let xid: u64 = rng.gen();
        let digest = digest32(&mut rng);
        assert_eq!(
            parse_reply(&encode_prepared(xid, &digest)),
            Some(XReply::Prepared { xid, digest })
        );
        assert_eq!(
            parse_reply(&encode_rejected(xid)),
            Some(XReply::Rejected { xid })
        );
        for decision in [DECISION_COMMIT, DECISION_ABORT] {
            assert_eq!(
                parse_reply(&encode_ack(xid, decision)),
                Some(XReply::Ack { xid, decision })
            );
        }
        // Arbitrary bytes either parse to None or to some reply — never
        // panic; SCADA's "ok" replies must always be None.
        let junk = payload(&mut rng, 64);
        let _ = parse_reply(&junk);
        assert_eq!(parse_reply(b"ok"), None);
    }
}

#[test]
fn shard_ops_survive_prime_framing_and_sealing() {
    // A cross-shard op travels as a signed Prime client op, which a
    // replica may link-seal before forwarding. The whole nesting —
    // ShardMsg -> ClientOp payload -> PrimeMsg::Op -> sealed frame —
    // must come back bit-for-bit.
    for variant in 0..VARIANTS {
        for sample in 0..8 {
            let mut rng =
                StdRng::seed_from_u64(MASTER_SEED ^ 0x5EA1_0ED0 ^ (variant << 16) ^ sample);
            let msg = gen_msg(&mut rng, variant);
            let op = ClientOp {
                client: ClientId(rng.gen_range(0..2048)),
                cseq: rng.gen(),
                payload: msg.encode(),
                sig: {
                    let mut sig = [0u8; 64];
                    rng.fill(&mut sig[..]);
                    sig
                },
            };
            let inner = PrimeMsg::Op(op.clone()).encode();
            let sender = ReplicaId(rng.gen_range(0..32));
            let key: [u8; 32] = digest32(&mut rng);
            let sealed = seal_frame(sender, &key, &inner);
            let parsed = decode_sealed(&sealed)
                .expect("sealed frame parses")
                .expect("tagged as sealed");
            assert_eq!(parsed.sender, sender);
            assert!(parsed.verify(&key), "variant {variant}: MAC must verify");
            match decode_frame(parsed.inner).expect("inner decodes") {
                Frame::Plain(PrimeMsg::Op(got)) => {
                    assert_eq!(got, op);
                    assert!(ShardMsg::is_shard_op(got.payload[0]));
                    assert_eq!(
                        ShardMsg::decode(&got.payload).expect("payload decodes"),
                        msg
                    );
                }
                other => panic!("variant {variant}: unexpected frame {other:?}"),
            }
        }
    }
}
