//! The cross-shard coordinator: a pure 2PC-over-BFT state machine
//! ([`XCoord`]) plus the substrate process ([`CoordinatorProcess`]) that
//! drives it over Spines overlays as a Prime client of every group.
//!
//! The machine is pure — inputs are replies and timer pops, outputs are
//! [`XAction`] values — so the explore harness can drive it directly
//! under adversarial schedules while both substrates share the exact
//! protocol logic.

use std::collections::{BTreeMap, BTreeSet};

use bytes::Bytes;
use spire_crypto::keys::Signer;
use spire_prime::msg::{decode_enclosed, ClientOp, PrimeMsg};
use spire_prime::{ClientId, ReplyCert};
use spire_sim::{Context, Process, ProcessId, Span, Time};
use spire_spines::{Dissemination, OverlayAddr, SpinesPort};

use crate::map::ShardMap;
use crate::msg::{parse_reply, ShardCmd, ShardMsg, XReply, DECISION_ABORT, DECISION_COMMIT};
use crate::router;

/// Tuning for the coordinator machine.
#[derive(Clone, Copy, Debug)]
pub struct XCoordConfig {
    /// Number of groups.
    pub groups: u32,
    /// Per-group fault threshold (votes need `f + 1`).
    pub f: u32,
    /// Retry timer for an unanswered prepare.
    pub prepare_timeout: Span,
    /// Retry timer for unacked commit/abort decisions.
    pub decision_timeout: Span,
    /// Prepare retries before giving up and aborting. Decisions are
    /// never abandoned (blocking 2PC).
    pub prepare_attempts: u32,
}

impl Default for XCoordConfig {
    fn default() -> XCoordConfig {
        XCoordConfig {
            groups: 1,
            f: 1,
            prepare_timeout: Span::millis(400),
            decision_timeout: Span::millis(400),
            prepare_attempts: 5,
        }
    }
}

/// Phases of one transaction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Phase {
    Preparing,
    Committing,
    Aborting,
}

#[derive(Debug)]
struct Tx {
    cmds: Vec<ShardCmd>,
    shards: Vec<u32>,
    coord: u32,
    ts_us: u64,
    poison: bool,
    phase: Phase,
    /// Prepare votes from coordinator-group replicas: replica id →
    /// (result payload, raw frame for the certificate).
    votes: BTreeMap<u32, (Vec<u8>, Bytes)>,
    rejects: BTreeSet<u32>,
    cert: Option<ReplyCert>,
    /// Groups that acked the current decision.
    acked: BTreeSet<u32>,
    attempts: u32,
}

/// An output of the pure machine, interpreted by the hosting process.
#[derive(Clone, Debug, PartialEq)]
pub enum XAction {
    /// Submit `payload` as a fresh signed client op (`cseq`) to every
    /// replica of `group`.
    Send {
        /// Target group.
        group: u32,
        /// Client sequence number to sign the op with (fresh per retry —
        /// replicas deduplicate cseqs and will not re-reply).
        cseq: u64,
        /// Cross-shard operation payload.
        payload: Bytes,
    },
    /// (Re)arm the retry timer for `xid`.
    SetTimer {
        /// Transaction id.
        xid: u64,
        /// Delay from now.
        delay: Span,
    },
    /// The transaction completed: every participant acked the decision.
    Done {
        /// Transaction id.
        xid: u64,
        /// True for commit, false for abort.
        committed: bool,
        /// Prepare retransmissions it took (telemetry).
        retries: u32,
    },
}

/// Pure 2PC-over-BFT coordinator state machine.
#[derive(Debug)]
pub struct XCoord {
    cfg: XCoordConfig,
    next_cseq: Vec<u64>,
    /// (group, cseq) → xid, for routing replies across retries.
    pending: BTreeMap<(u32, u64), u64>,
    txs: BTreeMap<u64, Tx>,
    next_xid: u64,
}

impl XCoord {
    /// A fresh machine.
    pub fn new(cfg: XCoordConfig) -> XCoord {
        XCoord {
            next_cseq: vec![0; cfg.groups as usize],
            cfg,
            pending: BTreeMap::new(),
            txs: BTreeMap::new(),
            next_xid: 1,
        }
    }

    /// Number of transactions still in flight.
    pub fn in_flight(&self) -> usize {
        self.txs.len()
    }

    fn fresh_cseq(&mut self, group: u32, xid: u64) -> u64 {
        self.next_cseq[group as usize] += 1;
        let cseq = self.next_cseq[group as usize];
        self.pending.insert((group, cseq), xid);
        cseq
    }

    fn send_prepare(&mut self, xid: u64, out: &mut Vec<XAction>) {
        let (coord, payload) = {
            let tx = &self.txs[&xid];
            (
                tx.coord,
                ShardMsg::XPrepare {
                    xid,
                    coord_shard: tx.coord,
                    ts_us: tx.ts_us,
                    shards: tx.shards.clone(),
                    cmds: tx.cmds.clone(),
                    poison: tx.poison,
                }
                .encode(),
            )
        };
        let cseq = self.fresh_cseq(coord, xid);
        out.push(XAction::Send {
            group: coord,
            cseq,
            payload,
        });
        out.push(XAction::SetTimer {
            xid,
            delay: self.cfg.prepare_timeout,
        });
    }

    /// Sends the current decision to every participant group that has
    /// not acked it yet.
    fn send_decision(&mut self, xid: u64, out: &mut Vec<XAction>) {
        let (targets, payload): (Vec<u32>, Bytes) = {
            let tx = &self.txs[&xid];
            let targets = tx
                .shards
                .iter()
                .copied()
                .filter(|g| !tx.acked.contains(g))
                .collect();
            let payload = match tx.phase {
                Phase::Committing => ShardMsg::XCommit {
                    xid,
                    coord_shard: tx.coord,
                    ts_us: tx.ts_us,
                    shards: tx.shards.clone(),
                    cmds: tx.cmds.clone(),
                    cert: tx.cert.clone().expect("committing without certificate"),
                }
                .encode(),
                Phase::Aborting => ShardMsg::XAbort {
                    xid,
                    coord_shard: tx.coord,
                    shards: tx.shards.clone(),
                }
                .encode(),
                Phase::Preparing => unreachable!("decision before prepare resolved"),
            };
            (targets, payload)
        };
        for group in targets {
            let cseq = self.fresh_cseq(group, xid);
            out.push(XAction::Send {
                group,
                cseq,
                payload: payload.clone(),
            });
        }
        out.push(XAction::SetTimer {
            xid,
            delay: self.cfg.decision_timeout,
        });
    }

    /// Starts a transaction over `cmds`. Returns the xid and the actions
    /// to perform.
    pub fn begin(&mut self, cmds: Vec<ShardCmd>, poison: bool, now: Time) -> (u64, Vec<XAction>) {
        let shards = router::participants(&cmds);
        let coord = router::coordinator_shard(&shards);
        let xid = self.next_xid;
        self.next_xid += 1;
        self.txs.insert(
            xid,
            Tx {
                cmds,
                shards,
                coord,
                ts_us: now.0,
                poison,
                phase: Phase::Preparing,
                votes: BTreeMap::new(),
                rejects: BTreeSet::new(),
                cert: None,
                acked: BTreeSet::new(),
                attempts: 0,
            },
        );
        let mut out = Vec::new();
        self.send_prepare(xid, &mut out);
        (xid, out)
    }

    /// Feeds one reply frame from `replica` of `group`. `raw` is the
    /// frame exactly as read off the wire (kept for certificates).
    pub fn on_reply(
        &mut self,
        group: u32,
        replica: u32,
        cseq: u64,
        result: &[u8],
        raw: &Bytes,
    ) -> Vec<XAction> {
        enum Next {
            Nothing,
            Decide,
            Done { committed: bool, retries: u32 },
        }
        let Some(&xid) = self.pending.get(&(group, cseq)) else {
            return Vec::new();
        };
        let f = self.cfg.f as usize;
        let next = {
            let Some(tx) = self.txs.get_mut(&xid) else {
                return Vec::new();
            };
            match (parse_reply(result), tx.phase) {
                (Some(XReply::Prepared { xid: rx, .. }), Phase::Preparing)
                    if rx == xid && group == tx.coord =>
                {
                    tx.votes.insert(replica, (result.to_vec(), raw.clone()));
                    // Certificate: f+1 distinct replicas voting the SAME
                    // payload (honest replicas are deterministic, so the
                    // digest they vote is identical).
                    let mut tally: BTreeMap<&[u8], Vec<u32>> = BTreeMap::new();
                    for (rep, (res, _)) in &tx.votes {
                        tally.entry(res.as_slice()).or_default().push(*rep);
                    }
                    match tally.into_iter().find(|(_, reps)| reps.len() > f) {
                        Some((res, reps)) => {
                            let frames = reps
                                .iter()
                                .map(|rep| tx.votes[rep].1.clone())
                                .collect::<Vec<_>>();
                            tx.cert = Some(ReplyCert {
                                result: Bytes::copy_from_slice(res),
                                frames,
                            });
                            tx.phase = Phase::Committing;
                            tx.acked.clear();
                            Next::Decide
                        }
                        None => Next::Nothing,
                    }
                }
                (Some(XReply::Rejected { xid: rx }), Phase::Preparing)
                    if rx == xid && group == tx.coord =>
                {
                    tx.rejects.insert(replica);
                    if tx.rejects.len() > f {
                        tx.phase = Phase::Aborting;
                        tx.acked.clear();
                        Next::Decide
                    } else {
                        Next::Nothing
                    }
                }
                (Some(XReply::Ack { xid: rx, decision }), phase) if rx == xid => {
                    let wanted = match phase {
                        Phase::Committing => Some(DECISION_COMMIT),
                        Phase::Aborting => Some(DECISION_ABORT),
                        Phase::Preparing => None,
                    };
                    if wanted == Some(decision) {
                        tx.acked.insert(group);
                        if tx.shards.iter().all(|g| tx.acked.contains(g)) {
                            Next::Done {
                                committed: phase == Phase::Committing,
                                retries: tx.attempts,
                            }
                        } else {
                            Next::Nothing
                        }
                    } else {
                        Next::Nothing
                    }
                }
                // Stale-phase or cross-transaction replies are ignored.
                _ => Next::Nothing,
            }
        };
        let mut out = Vec::new();
        match next {
            Next::Nothing => {}
            Next::Decide => self.send_decision(xid, &mut out),
            Next::Done { committed, retries } => {
                self.txs.remove(&xid);
                self.pending.retain(|_, x| *x != xid);
                out.push(XAction::Done {
                    xid,
                    committed,
                    retries,
                });
            }
        }
        out
    }

    /// Handles the retry timer for `xid` popping.
    pub fn on_timer(&mut self, xid: u64) -> Vec<XAction> {
        enum Next {
            Prepare,
            Decide,
        }
        let next = {
            let Some(tx) = self.txs.get_mut(&xid) else {
                return Vec::new();
            };
            tx.attempts += 1;
            match tx.phase {
                Phase::Preparing => {
                    if tx.attempts >= self.cfg.prepare_attempts {
                        // No certificate exists, so aborting is safe: no
                        // participant can ever receive a valid XCommit.
                        tx.phase = Phase::Aborting;
                        tx.acked.clear();
                        Next::Decide
                    } else {
                        Next::Prepare
                    }
                }
                Phase::Committing => {
                    #[cfg(feature = "seeded-xshard-bug")]
                    if tx.attempts >= 3 {
                        // SEEDED BUG: an "impatient" coordinator gives up
                        // on a stalled commit and aborts the groups that
                        // have not acked — while groups that already
                        // committed stay committed. Exactly the atomicity
                        // violation the ledger must catch.
                        tx.phase = Phase::Aborting;
                    }
                    Next::Decide
                }
                Phase::Aborting => Next::Decide,
            }
        };
        let mut out = Vec::new();
        match next {
            Next::Prepare => self.send_prepare(xid, &mut out),
            Next::Decide => self.send_decision(xid, &mut out),
        }
        out
    }
}

/// Client wiring for one group: how the coordinator process reaches it.
pub struct GroupLink {
    /// Overlay port at the group's HMI-site external daemon.
    pub port: SpinesPort,
    /// External-overlay addresses of the group's replicas.
    pub replica_addrs: Vec<OverlayAddr>,
    /// Signer for the coordinator's client key *in this group's key
    /// space* (`g * stride + client_base + id`).
    pub signer: Signer,
}

/// Timer tag for the workload cadence; per-transaction retry timers use
/// `xid + XID_TAG_BASE`.
const WORKLOAD_TAG: u64 = 1;
const XID_TAG_BASE: u64 = 16;

/// The deployment process hosting [`XCoord`]: submits a deterministic
/// cross-shard workload and shuttles frames between the machine and each
/// group's overlay.
pub struct CoordinatorProcess {
    coord: XCoord,
    links: Vec<GroupLink>,
    daemon_to_group: BTreeMap<ProcessId, u32>,
    client: ClientId,
    /// New-transaction cadence; `Span::ZERO` disables the workload.
    interval: Span,
    /// Cross-shard RTU pairs cycled by the workload.
    pairs: Vec<(u32, u32)>,
    map: ShardMap,
    poison_every: u64,
    issued: u64,
    toggle: bool,
    sent_at: BTreeMap<u64, Time>,
}

impl CoordinatorProcess {
    /// Builds the process. `pairs` must be non-empty when `interval` is
    /// non-zero.
    pub fn new(
        cfg: XCoordConfig,
        links: Vec<GroupLink>,
        client: ClientId,
        interval: Span,
        map: ShardMap,
        pairs: Vec<(u32, u32)>,
        poison_every: u64,
    ) -> CoordinatorProcess {
        assert!(
            interval == Span::ZERO || !pairs.is_empty(),
            "coordinator workload needs cross-shard pairs"
        );
        let daemon_to_group = links
            .iter()
            .enumerate()
            .map(|(g, link)| (link.port.daemon_pid, g as u32))
            .collect();
        CoordinatorProcess {
            coord: XCoord::new(cfg),
            links,
            daemon_to_group,
            client,
            interval,
            pairs,
            map,
            poison_every,
            issued: 0,
            toggle: false,
            sent_at: BTreeMap::new(),
        }
    }

    fn apply(&mut self, ctx: &mut Context<'_>, actions: Vec<XAction>) {
        for action in actions {
            match action {
                XAction::Send {
                    group,
                    cseq,
                    payload,
                } => {
                    let link = &self.links[group as usize];
                    let op = ClientOp::signed(self.client, cseq, payload, &link.signer);
                    let msg = PrimeMsg::Op(op).encode();
                    for &addr in &link.replica_addrs {
                        link.port
                            .send(ctx, addr, Dissemination::Flood, true, msg.clone());
                    }
                    ctx.count("xshard.sends", 1);
                }
                XAction::SetTimer { xid, delay } => {
                    ctx.set_timer(delay, xid + XID_TAG_BASE);
                }
                XAction::Done {
                    xid,
                    committed,
                    retries,
                } => {
                    let elapsed_ms = self
                        .sent_at
                        .remove(&xid)
                        .map(|t| (ctx.now().0.saturating_sub(t.0)) as f64 / 1000.0);
                    if committed {
                        ctx.count("xshard.commits", 1);
                        if let Some(ms) = elapsed_ms {
                            ctx.record("xshard.commit_latency_ms", ms);
                        }
                    } else {
                        ctx.count("xshard.aborts", 1);
                        if let Some(ms) = elapsed_ms {
                            ctx.record("xshard.abort_latency_ms", ms);
                        }
                    }
                    if retries > 0 {
                        ctx.count("xshard.retries", retries as u64);
                    }
                }
            }
        }
    }

    fn issue_tx(&mut self, ctx: &mut Context<'_>) {
        let (a, b) = self.pairs[(self.issued % self.pairs.len() as u64) as usize];
        self.issued += 1;
        self.toggle = !self.toggle;
        let kind = if self.toggle {
            crate::msg::cmd_kind::OPEN_BREAKER
        } else {
            crate::msg::cmd_kind::CLOSE_BREAKER
        };
        let cmds = vec![
            ShardCmd {
                shard: self.map.shard_of(a),
                rtu: a,
                kind,
                a: 0,
                b: 0,
            },
            ShardCmd {
                shard: self.map.shard_of(b),
                rtu: b,
                kind,
                a: 0,
                b: 0,
            },
        ];
        let poison = self.poison_every > 0 && self.issued.is_multiple_of(self.poison_every);
        let (xid, actions) = self.coord.begin(cmds, poison, ctx.now());
        self.sent_at.insert(xid, ctx.now());
        ctx.count("xshard.commands", 1);
        self.apply(ctx, actions);
    }
}

impl Process for CoordinatorProcess {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        for link in &self.links {
            link.port.attach(ctx);
        }
        if self.interval > Span::ZERO {
            ctx.set_timer(self.interval, WORKLOAD_TAG);
        }
    }

    fn on_message(&mut self, ctx: &mut Context<'_>, from: ProcessId, bytes: &Bytes) {
        let Some(&group) = self.daemon_to_group.get(&from) else {
            return;
        };
        let Some((_, payload)) = SpinesPort::decode_deliver(bytes) else {
            return;
        };
        let Ok(PrimeMsg::Reply {
            replica,
            client,
            cseq,
            result,
            ..
        }) = decode_enclosed(&payload)
        else {
            return;
        };
        if client != self.client {
            return;
        }
        let actions = self
            .coord
            .on_reply(group, replica.0, cseq, &result, &payload);
        self.apply(ctx, actions);
    }

    fn on_timer(&mut self, ctx: &mut Context<'_>, tag: u64) {
        if tag == WORKLOAD_TAG {
            self.issue_tx(ctx);
            ctx.set_timer(self.interval, WORKLOAD_TAG);
            return;
        }
        let actions = self.coord.on_timer(tag - XID_TAG_BASE);
        self.apply(ctx, actions);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msg::cmd_kind;

    fn cmds2() -> Vec<ShardCmd> {
        vec![
            ShardCmd {
                shard: 0,
                rtu: 1,
                kind: cmd_kind::OPEN_BREAKER,
                a: 0,
                b: 0,
            },
            ShardCmd {
                shard: 1,
                rtu: 2,
                kind: cmd_kind::OPEN_BREAKER,
                a: 0,
                b: 0,
            },
        ]
    }

    fn cfg() -> XCoordConfig {
        XCoordConfig {
            groups: 2,
            f: 1,
            ..XCoordConfig::default()
        }
    }

    fn send_payload(actions: &[XAction]) -> Vec<(u32, u64, Bytes)> {
        actions
            .iter()
            .filter_map(|a| match a {
                XAction::Send {
                    group,
                    cseq,
                    payload,
                } => Some((*group, *cseq, payload.clone())),
                _ => None,
            })
            .collect()
    }

    /// Drives a happy-path transaction through the pure machine with
    /// hand-fed replies.
    #[test]
    fn prepare_certificate_commit_done() {
        let mut xc = XCoord::new(cfg());
        let (xid, actions) = xc.begin(cmds2(), false, Time(100));
        let sends = send_payload(&actions);
        assert_eq!(sends.len(), 1, "prepare goes to the coordinator group");
        assert_eq!(sends[0].0, 0);
        let ShardMsg::XPrepare {
            ts_us,
            shards,
            cmds,
            ..
        } = ShardMsg::decode(&sends[0].2).unwrap()
        else {
            panic!("expected prepare");
        };
        let digest = ShardMsg::prepare_digest(xid, ts_us, &shards, &cmds);
        let vote = crate::msg::encode_prepared(xid, &digest);
        let raw = Bytes::from_static(b"frame");
        // One vote: nothing yet (f=1 needs two).
        assert!(send_payload(&xc.on_reply(0, 0, sends[0].1, &vote, &raw)).is_empty());
        let actions = xc.on_reply(0, 1, sends[0].1, &vote, &raw);
        let commits = send_payload(&actions);
        assert_eq!(commits.len(), 2, "commit goes to both participants");
        for (_, _, payload) in &commits {
            let ShardMsg::XCommit { cert, .. } = ShardMsg::decode(payload).unwrap() else {
                panic!("expected commit");
            };
            assert_eq!(cert.result.as_ref(), vote.as_slice());
            assert_eq!(cert.frames.len(), 2);
        }
        let ack = crate::msg::encode_ack(xid, DECISION_COMMIT);
        assert!(xc
            .on_reply(0, 0, commits[0].1, &ack, &raw)
            .iter()
            .all(|a| !matches!(a, XAction::Done { .. })));
        let done = xc.on_reply(1, 0, commits[1].1, &ack, &raw);
        assert!(matches!(
            done.as_slice(),
            [XAction::Done {
                committed: true,
                ..
            }]
        ));
        assert_eq!(xc.in_flight(), 0);
    }

    #[test]
    fn rejection_quorum_aborts() {
        let mut xc = XCoord::new(cfg());
        let (xid, actions) = xc.begin(cmds2(), true, Time(0));
        let sends = send_payload(&actions);
        let raw = Bytes::from_static(b"frame");
        let rej = crate::msg::encode_rejected(xid);
        assert!(send_payload(&xc.on_reply(0, 0, sends[0].1, &rej, &raw)).is_empty());
        let aborts = send_payload(&xc.on_reply(0, 2, sends[0].1, &rej, &raw));
        assert_eq!(aborts.len(), 2);
        for (_, _, payload) in &aborts {
            assert!(matches!(
                ShardMsg::decode(payload).unwrap(),
                ShardMsg::XAbort { .. }
            ));
        }
    }

    #[test]
    fn prepare_retries_use_fresh_cseqs_then_abort() {
        let mut xc = XCoord::new(XCoordConfig {
            prepare_attempts: 3,
            ..cfg()
        });
        let (_, actions) = xc.begin(cmds2(), false, Time(0));
        let first = send_payload(&actions)[0].1;
        let second = send_payload(&xc.on_timer(1))[0].1;
        assert!(second > first, "retry must carry a fresh cseq");
        let third = send_payload(&xc.on_timer(1))[0].1;
        assert!(third > second);
        // Budget exhausted: the next pop aborts both participants.
        let aborts = send_payload(&xc.on_timer(1));
        assert_eq!(aborts.len(), 2);
        assert!(matches!(
            ShardMsg::decode(&aborts[0].2).unwrap(),
            ShardMsg::XAbort { .. }
        ));
    }

    #[test]
    fn commit_phase_retries_only_unacked_groups() {
        let mut xc = XCoord::new(cfg());
        let (xid, actions) = xc.begin(cmds2(), false, Time(0));
        let sends = send_payload(&actions);
        let raw = Bytes::from_static(b"frame");
        let ShardMsg::XPrepare {
            ts_us,
            shards,
            cmds,
            ..
        } = ShardMsg::decode(&sends[0].2).unwrap()
        else {
            panic!();
        };
        let vote =
            crate::msg::encode_prepared(xid, &ShardMsg::prepare_digest(xid, ts_us, &shards, &cmds));
        xc.on_reply(0, 0, sends[0].1, &vote, &raw);
        let commits = send_payload(&xc.on_reply(0, 1, sends[0].1, &vote, &raw));
        // Group 0 acks; group 1 stays silent.
        let ack = crate::msg::encode_ack(xid, DECISION_COMMIT);
        xc.on_reply(0, 0, commits[0].1, &ack, &raw);
        let retry = send_payload(&xc.on_timer(xid));
        assert_eq!(retry.len(), 1);
        assert_eq!(retry[0].0, 1, "only the silent group is retried");
        assert!(retry[0].1 > commits[1].1, "retry carries a fresh cseq");
    }

    #[test]
    fn stale_prepare_votes_after_decision_ignored() {
        let mut xc = XCoord::new(cfg());
        let (xid, actions) = xc.begin(cmds2(), false, Time(0));
        let sends = send_payload(&actions);
        let raw = Bytes::from_static(b"frame");
        let ShardMsg::XPrepare {
            ts_us,
            shards,
            cmds,
            ..
        } = ShardMsg::decode(&sends[0].2).unwrap()
        else {
            panic!();
        };
        let vote =
            crate::msg::encode_prepared(xid, &ShardMsg::prepare_digest(xid, ts_us, &shards, &cmds));
        xc.on_reply(0, 0, sends[0].1, &vote, &raw);
        xc.on_reply(0, 1, sends[0].1, &vote, &raw);
        // A third, late vote must not produce new actions.
        assert!(xc.on_reply(0, 2, sends[0].1, &vote, &raw).is_empty());
    }
}
