//! Shard-aware routing: which group serves an RTU, and which groups
//! participate in a transaction.

use crate::map::ShardMap;
use crate::msg::ShardCmd;

/// Steers traffic to the owning group. `T` is whatever a caller uses as a
/// per-group endpoint — client wiring info at deployment build time, live
/// [`crate::coordinator::GroupLink`]s inside the coordinator.
#[derive(Clone, Debug)]
pub struct ShardRouter<T> {
    map: ShardMap,
    groups: Vec<T>,
}

impl<T> ShardRouter<T> {
    /// Builds a router; `groups[g]` is the endpoint for group `g`.
    ///
    /// # Panics
    ///
    /// Panics unless `groups.len()` matches the map's shard count.
    pub fn new(map: ShardMap, groups: Vec<T>) -> ShardRouter<T> {
        assert_eq!(
            groups.len(),
            map.shards() as usize,
            "router needs one endpoint per shard"
        );
        ShardRouter { map, groups }
    }

    /// The underlying shard map.
    pub fn map(&self) -> &ShardMap {
        &self.map
    }

    /// Endpoint of the group owning `rtu` — where the RTU's updates and
    /// HMI reads for it must go.
    pub fn route_rtu(&self, rtu: u32) -> &T {
        &self.groups[self.map.shard_of(rtu) as usize]
    }

    /// Endpoint of group `g`.
    pub fn group(&self, g: u32) -> &T {
        &self.groups[g as usize]
    }

    /// All endpoints, in group order.
    pub fn groups(&self) -> &[T] {
        &self.groups
    }
}

/// The sorted, deduplicated participant set of a transaction body.
pub fn participants(cmds: &[ShardCmd]) -> Vec<u32> {
    let mut shards: Vec<u32> = cmds.iter().map(|c| c.shard).collect();
    shards.sort_unstable();
    shards.dedup();
    shards
}

/// The coordinator group for a participant set: the owner of the lowest
/// shard (deterministic, so every observer agrees).
pub fn coordinator_shard(shards: &[u32]) -> u32 {
    *shards.first().expect("transaction with no participants")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cmd(shard: u32) -> ShardCmd {
        ShardCmd {
            shard,
            rtu: 0,
            kind: crate::msg::cmd_kind::OPEN_BREAKER,
            a: 0,
            b: 0,
        }
    }

    #[test]
    fn routes_to_owner() {
        let map = ShardMap::new(3);
        let router = ShardRouter::new(map.clone(), vec!["g0", "g1", "g2"]);
        for rtu in 0..50 {
            assert_eq!(
                *router.route_rtu(rtu),
                router.groups()[map.shard_of(rtu) as usize]
            );
        }
    }

    #[test]
    fn participant_set_sorted_deduped() {
        assert_eq!(participants(&[cmd(2), cmd(0), cmd(2)]), vec![0, 2]);
        assert_eq!(coordinator_shard(&[0, 2]), 0);
    }

    #[test]
    #[should_panic]
    fn wrong_group_count_rejected() {
        ShardRouter::new(ShardMap::new(2), vec!["only-one"]);
    }
}
