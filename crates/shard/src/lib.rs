//! Multi-group sharding for Spire: partition grid state by substation /
//! region into independent Prime replication groups.
//!
//! One Prime RSM caps out at hundreds of confirmed updates/s no matter how
//! fast the hot path gets — ordering is sequential and every replica sees
//! every operation. This crate breaks the paper's single-control-center
//! assumption (following the DER-fleet line of work): RTUs are partitioned
//! across N groups by a deterministic [`ShardMap`], proxies and HMIs are
//! wired to the owning group by a [`ShardRouter`], and the rare
//! supervisory command spanning regions runs as an ordered 2PC-over-BFT
//! transaction ([`XCoord`] / [`XParticipant`]):
//!
//! 1. the coordinator client submits `XPrepare` to the *coordinator
//!    group* (the owner of the lowest participant shard), which orders it
//!    and replies with prepare votes;
//! 2. `f + 1` matching votes form a portable [`spire_prime::ReplyCert`];
//! 3. the coordinator client submits `XCommit` (carrying the certificate)
//!    to every participant group, which verifies the certificate, orders
//!    the commit, and applies its own shard's commands;
//! 4. an `XPrepare` rejected by `f + 1` replicas (infeasible command) or
//!    timed out past its retry budget aborts: `XAbort` to all
//!    participants. Once a certificate exists the transaction is
//!    commit-only — the commit phase retries forever (blocking 2PC), so
//!    atomicity never depends on the coordinator's patience.
//!
//! Safety relies on each *group* being a BFT RSM: a group never issues
//! both commit and abort for one transaction, and the certificate makes
//! prepare decisions transferable. The [`XShardLedger`] checks the
//! resulting invariant online (all participants commit XOR all abort).

pub mod coordinator;
pub mod ledger;
pub mod map;
pub mod msg;
pub mod participant;
pub mod router;

pub use coordinator::{CoordinatorProcess, GroupLink, XAction, XCoord, XCoordConfig};
pub use ledger::{LedgerCounts, XShardLedger};
pub use map::ShardMap;
pub use msg::{ShardCmd, ShardMsg, XReply};
pub use participant::{CertVerifier, XOutcome, XParticipant};
pub use router::ShardRouter;

/// Key-id stride between groups: group `g` uses node ids
/// `g * SHARD_KEY_STRIDE + base` for every role (daemons, replicas,
/// clients), so one [`spire_crypto::KeyStore`] covers the whole sharded
/// deployment and certificates verify across group boundaries.
pub const SHARD_KEY_STRIDE: u32 = 4096;

/// Client id of the cross-shard coordinator within every group's client
/// id space (distinct from RTUs `0..` and HMIs `1000..`).
pub const COORD_CLIENT_ID: u32 = 999;

/// External-overlay port the coordinator client binds at each group's
/// HMI site daemon.
pub const COORD_CLIENT_PORT: u16 = 99;

/// True when this build carries the deliberate cross-shard atomicity bug
/// (feature `seeded-xshard-bug`); replay artifacts record it so a clean
/// build can detect a stale expectation.
pub const SEEDED_XSHARD_BUG_ACTIVE: bool = cfg!(feature = "seeded-xshard-bug");
