//! The participant-side state machine for cross-shard transactions.
//!
//! Runs *inside* a group's replicated application (the SCADA master
//! embeds one), so its state is ordered, deterministic, and covered by
//! checkpoints: every replica of a group holds an identical
//! [`XParticipant`] and produces identical replies — which is what lets
//! the coordinator treat f+1 matching replies as the group's decision.

use std::fmt;
use std::sync::Arc;

use spire_crypto::{Digest, KeyStore};
use spire_prime::{ClientId, ReplyCert};
use spire_sim::{WireError, WireReader, WireWriter};

use crate::msg::{
    encode_ack, encode_prepared, encode_rejected, ShardCmd, ShardMsg, DECISION_ABORT,
    DECISION_COMMIT,
};

/// Verifies prepare certificates issued by any group of the deployment.
/// Replica keys live at `coord_shard * stride + replica_base + id`; the
/// coordinator client id is the same in every group's namespace.
#[derive(Clone)]
pub struct CertVerifier {
    /// Deployment-wide key store.
    pub keystore: Arc<KeyStore>,
    /// Key-id stride between groups ([`crate::SHARD_KEY_STRIDE`]).
    pub stride: u32,
    /// Replica key base within a group's key space.
    pub replica_base: u32,
    /// Coordinator client id (the `Reply.client` votes must target).
    pub client: ClientId,
    /// Per-group fault threshold; certificates need `f + 1` votes.
    pub f: u32,
    /// Mock-crypto mode (must match the deployment).
    pub mock: bool,
}

impl CertVerifier {
    /// True when `cert` proves the coordinator group ordered a prepare
    /// whose vote payload is exactly `expect_result`.
    pub fn verify(&self, cert: &ReplyCert, coord_shard: u32, expect_result: &[u8]) -> bool {
        cert.result.as_ref() == expect_result
            && cert.verify(
                &self.keystore,
                coord_shard * self.stride + self.replica_base,
                self.client,
                self.f,
                self.mock,
            )
    }
}

impl fmt::Debug for CertVerifier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CertVerifier")
            .field("stride", &self.stride)
            .field("replica_base", &self.replica_base)
            .field("client", &self.client)
            .field("f", &self.f)
            .field("mock", &self.mock)
            .finish_non_exhaustive()
    }
}

/// A first-time transaction decision surfaced by [`XParticipant::execute`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct XDecision {
    /// Transaction id.
    pub xid: u64,
    /// Participant groups of the transaction.
    pub shards: Vec<u32>,
    /// [`DECISION_COMMIT`] or [`DECISION_ABORT`].
    pub decision: u8,
}

/// Result of executing one cross-shard operation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct XOutcome {
    /// Reply payload for the submitting coordinator client.
    pub reply: Vec<u8>,
    /// Own-shard commands to apply to grid state (commit only, first
    /// decision only — re-delivered commits must not re-actuate).
    pub applies: Vec<ShardCmd>,
    /// Set when this execution decided the transaction.
    pub decision: Option<XDecision>,
}

impl XOutcome {
    fn reply_only(reply: Vec<u8>) -> XOutcome {
        XOutcome {
            reply,
            applies: Vec::new(),
            decision: None,
        }
    }
}

/// Deterministic 2PC participant state for one shard, embedded in the
/// group's replicated application.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct XParticipant {
    shard: u32,
    prepared: std::collections::BTreeMap<u64, Digest>,
    decided: std::collections::BTreeMap<u64, u8>,
}

impl XParticipant {
    /// A fresh participant for `shard`.
    pub fn new(shard: u32) -> XParticipant {
        XParticipant {
            shard,
            ..XParticipant::default()
        }
    }

    /// This participant's shard.
    pub fn shard(&self) -> u32 {
        self.shard
    }

    /// Number of decided transactions (testing/inspection).
    pub fn decided_count(&self) -> usize {
        self.decided.len()
    }

    /// Executes one ordered cross-shard operation. Deterministic and
    /// idempotent per xid: a re-delivered decision re-acks without
    /// re-applying commands.
    pub fn execute(&mut self, msg: &ShardMsg, verifier: &CertVerifier) -> XOutcome {
        match msg {
            ShardMsg::XPrepare {
                xid,
                ts_us,
                shards,
                cmds,
                poison,
                ..
            } => {
                if let Some(&decision) = self.decided.get(xid) {
                    return XOutcome::reply_only(encode_ack(*xid, decision));
                }
                if *poison {
                    return XOutcome::reply_only(encode_rejected(*xid));
                }
                let digest = ShardMsg::prepare_digest(*xid, *ts_us, shards, cmds);
                self.prepared.insert(*xid, digest);
                XOutcome::reply_only(encode_prepared(*xid, &digest))
            }
            ShardMsg::XCommit {
                xid,
                coord_shard,
                ts_us,
                shards,
                cmds,
                cert,
            } => {
                if let Some(&decision) = self.decided.get(xid) {
                    return XOutcome::reply_only(encode_ack(*xid, decision));
                }
                let digest = ShardMsg::prepare_digest(*xid, *ts_us, shards, cmds);
                let expect = encode_prepared(*xid, &digest);
                if !verifier.verify(cert, *coord_shard, &expect) {
                    // Not an ack and not a decision: an unverifiable
                    // commit (forged or corrupted) is simply refused, and
                    // an honest coordinator's retry will carry a valid
                    // certificate.
                    return XOutcome::reply_only(b"err:cert".to_vec());
                }
                self.decided.insert(*xid, DECISION_COMMIT);
                self.prepared.remove(xid);
                XOutcome {
                    reply: encode_ack(*xid, DECISION_COMMIT),
                    applies: cmds
                        .iter()
                        .filter(|c| c.shard == self.shard)
                        .copied()
                        .collect(),
                    decision: Some(XDecision {
                        xid: *xid,
                        shards: shards.clone(),
                        decision: DECISION_COMMIT,
                    }),
                }
            }
            ShardMsg::XAbort { xid, shards, .. } => {
                if let Some(&decision) = self.decided.get(xid) {
                    return XOutcome::reply_only(encode_ack(*xid, decision));
                }
                self.decided.insert(*xid, DECISION_ABORT);
                self.prepared.remove(xid);
                XOutcome {
                    reply: encode_ack(*xid, DECISION_ABORT),
                    applies: Vec::new(),
                    decision: Some(XDecision {
                        xid: *xid,
                        shards: shards.clone(),
                        decision: DECISION_ABORT,
                    }),
                }
            }
        }
    }

    /// Appends the participant state to a snapshot encoding.
    pub fn write_into(&self, w: &mut WireWriter) {
        w.u32(self.shard);
        w.u32(self.prepared.len() as u32);
        for (xid, digest) in &self.prepared {
            w.u64(*xid).raw(digest);
        }
        w.u32(self.decided.len() as u32);
        for (xid, decision) in &self.decided {
            w.u64(*xid).u8(*decision);
        }
    }

    /// Reads participant state back from a snapshot encoding.
    pub fn read(r: &mut WireReader) -> Result<XParticipant, WireError> {
        let shard = r.u32()?;
        let mut prepared = std::collections::BTreeMap::new();
        for _ in 0..r.u32()? {
            prepared.insert(r.u64()?, r.array()?);
        }
        let mut decided = std::collections::BTreeMap::new();
        for _ in 0..r.u32()? {
            decided.insert(r.u64()?, r.u8()?);
        }
        Ok(XParticipant {
            shard,
            prepared,
            decided,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{COORD_CLIENT_ID, SHARD_KEY_STRIDE};
    use bytes::Bytes;
    use spire_crypto::keys::{KeyMaterial, Signer};
    use spire_crypto::NodeId;
    use spire_prime::msg::PrimeMsg;
    use spire_prime::ReplicaId;

    fn setup() -> (KeyMaterial, CertVerifier) {
        let material = KeyMaterial::new([3u8; 32]);
        let keystore = Arc::new(KeyStore::for_nodes(&material, SHARD_KEY_STRIDE * 2));
        (
            material,
            CertVerifier {
                keystore,
                stride: SHARD_KEY_STRIDE,
                replica_base: 1000,
                client: ClientId(COORD_CLIENT_ID),
                f: 1,
                mock: true,
            },
        )
    }

    fn tx() -> (u64, u64, Vec<u32>, Vec<ShardCmd>) {
        (
            1,
            50,
            vec![0, 1],
            vec![
                ShardCmd {
                    shard: 0,
                    rtu: 2,
                    kind: crate::msg::cmd_kind::OPEN_BREAKER,
                    a: 0,
                    b: 0,
                },
                ShardCmd {
                    shard: 1,
                    rtu: 5,
                    kind: crate::msg::cmd_kind::CLOSE_BREAKER,
                    a: 1,
                    b: 0,
                },
            ],
        )
    }

    fn cert_for(material: &KeyMaterial, coord_shard: u32, result: &[u8]) -> ReplyCert {
        let frames = (0..2)
            .map(|rep| {
                let node = NodeId(coord_shard * SHARD_KEY_STRIDE + 1000 + rep);
                let signer = Signer::new(material.signing_key(node), true);
                let mut msg = PrimeMsg::Reply {
                    replica: ReplicaId(rep),
                    client: ClientId(COORD_CLIENT_ID),
                    cseq: 1,
                    result: Bytes::copy_from_slice(result),
                    sig: [0; 64],
                };
                let mut scratch = WireWriter::new();
                msg.sign_with(&signer, &mut scratch);
                msg.encode()
            })
            .collect();
        ReplyCert {
            result: Bytes::copy_from_slice(result),
            frames,
        }
    }

    #[test]
    fn prepare_then_commit_applies_own_shard_only() {
        let (material, verifier) = setup();
        let (xid, ts, shards, cmds) = tx();
        let mut p = XParticipant::new(0);
        let digest = ShardMsg::prepare_digest(xid, ts, &shards, &cmds);
        let prep = p.execute(
            &ShardMsg::XPrepare {
                xid,
                coord_shard: 0,
                ts_us: ts,
                shards: shards.clone(),
                cmds: cmds.clone(),
                poison: false,
            },
            &verifier,
        );
        assert_eq!(prep.reply, encode_prepared(xid, &digest));
        let cert = cert_for(&material, 0, &encode_prepared(xid, &digest));
        let commit = p.execute(
            &ShardMsg::XCommit {
                xid,
                coord_shard: 0,
                ts_us: ts,
                shards: shards.clone(),
                cmds: cmds.clone(),
                cert,
            },
            &verifier,
        );
        assert_eq!(commit.reply, encode_ack(xid, DECISION_COMMIT));
        assert_eq!(commit.applies.len(), 1);
        assert_eq!(commit.applies[0].shard, 0);
        assert!(commit.decision.is_some());
    }

    #[test]
    fn redelivered_commit_acks_without_reapplying() {
        let (material, verifier) = setup();
        let (xid, ts, shards, cmds) = tx();
        let mut p = XParticipant::new(1);
        let digest = ShardMsg::prepare_digest(xid, ts, &shards, &cmds);
        let msg = ShardMsg::XCommit {
            xid,
            coord_shard: 0,
            ts_us: ts,
            shards,
            cmds,
            cert: cert_for(&material, 0, &encode_prepared(xid, &digest)),
        };
        let first = p.execute(&msg, &verifier);
        assert_eq!(first.applies.len(), 1);
        let second = p.execute(&msg, &verifier);
        assert!(second.applies.is_empty());
        assert!(second.decision.is_none());
        assert_eq!(second.reply, first.reply);
    }

    #[test]
    fn forged_cert_refused() {
        let (material, verifier) = setup();
        let (xid, ts, shards, cmds) = tx();
        let mut p = XParticipant::new(0);
        // Certificate signed by the WRONG group's replicas.
        let digest = ShardMsg::prepare_digest(xid, ts, &shards, &cmds);
        let cert = cert_for(&material, 1, &encode_prepared(xid, &digest));
        let out = p.execute(
            &ShardMsg::XCommit {
                xid,
                coord_shard: 0,
                ts_us: ts,
                shards,
                cmds,
                cert,
            },
            &verifier,
        );
        assert_eq!(out.reply, b"err:cert".to_vec());
        assert!(out.decision.is_none());
        assert_eq!(p.decided_count(), 0);
    }

    #[test]
    fn poisoned_prepare_rejected_and_abort_decides() {
        let (_, verifier) = setup();
        let (xid, ts, shards, cmds) = tx();
        let mut p = XParticipant::new(0);
        let rej = p.execute(
            &ShardMsg::XPrepare {
                xid,
                coord_shard: 0,
                ts_us: ts,
                shards: shards.clone(),
                cmds,
                poison: true,
            },
            &verifier,
        );
        assert_eq!(rej.reply, encode_rejected(xid));
        let abort = p.execute(
            &ShardMsg::XAbort {
                xid,
                coord_shard: 0,
                shards,
            },
            &verifier,
        );
        assert_eq!(abort.reply, encode_ack(xid, DECISION_ABORT));
        assert_eq!(abort.decision.as_ref().unwrap().decision, DECISION_ABORT);
    }

    #[test]
    fn snapshot_roundtrip() {
        let (material, verifier) = setup();
        let (xid, ts, shards, cmds) = tx();
        let mut p = XParticipant::new(0);
        let digest = ShardMsg::prepare_digest(xid, ts, &shards, &cmds);
        p.execute(
            &ShardMsg::XPrepare {
                xid,
                coord_shard: 0,
                ts_us: ts,
                shards: shards.clone(),
                cmds: cmds.clone(),
                poison: false,
            },
            &verifier,
        );
        p.execute(
            &ShardMsg::XCommit {
                xid,
                coord_shard: 0,
                ts_us: ts,
                shards,
                cmds,
                cert: cert_for(&material, 0, &encode_prepared(xid, &digest)),
            },
            &verifier,
        );
        let mut w = WireWriter::new();
        p.write_into(&mut w);
        let buf = w.finish();
        let mut r = WireReader::new(&buf);
        let restored = XParticipant::read(&mut r).unwrap();
        r.expect_end().unwrap();
        assert_eq!(restored, p);
    }
}
