//! Online cross-shard atomicity ledger.
//!
//! Every replica that decides a transaction (executes `XCommit` or
//! `XAbort` for an xid it had not decided) records the decision here; the
//! deployment's `InvariantChecker` drains violations each tick. The
//! invariant is the 2PC contract: for each transaction, all participants
//! commit XOR all participants abort — a mixed decision set, or two
//! replicas of one group deciding differently, is a safety violation.
//! In-flight transactions (some participants not yet decided) are *not*
//! violations: blocking 2PC guarantees eventual completion, not
//! simultaneous completion.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Mutex;

use crate::msg::{DECISION_ABORT, DECISION_COMMIT};

/// Aggregate transaction counts for reports.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LedgerCounts {
    /// Transactions committed by every participant.
    pub committed: u64,
    /// Transactions aborted by every participant.
    pub aborted: u64,
    /// Transactions with at least one decision recorded but not complete.
    pub in_flight: u64,
    /// Total atomicity violations observed.
    pub violations: u64,
}

#[derive(Debug)]
struct TxRecord {
    n_shards: u32,
    by_shard: BTreeMap<u32, u8>,
    done: bool,
}

#[derive(Debug, Default)]
struct State {
    txs: BTreeMap<u64, TxRecord>,
    flagged: BTreeSet<u64>,
    pending: Vec<String>,
    committed: u64,
    aborted: u64,
    violations: u64,
}

/// Shared decision ledger (one per sharded deployment; replicas hold an
/// `Arc` and record through a mutex — decisions are rare relative to the
/// update hot path).
#[derive(Debug, Default)]
pub struct XShardLedger {
    inner: Mutex<State>,
}

impl XShardLedger {
    /// An empty ledger.
    pub fn new() -> XShardLedger {
        XShardLedger::default()
    }

    /// Records one replica's decision for (`xid`, `shard`). `n_shards` is
    /// the transaction's participant count (for completion tracking).
    pub fn record(&self, xid: u64, shard: u32, n_shards: u32, decision: u8) {
        let mut guard = self.inner.lock().unwrap();
        let s = &mut *guard;
        let tx = s.txs.entry(xid).or_insert_with(|| TxRecord {
            n_shards,
            by_shard: BTreeMap::new(),
            done: false,
        });
        let mut conflict = None;
        match tx.by_shard.get(&shard) {
            None => {
                tx.by_shard.insert(shard, decision);
            }
            Some(&prev) if prev == decision => {}
            Some(&prev) => {
                conflict = Some(format!(
                    "xshard: tx {xid} shard {shard} decided {} then {} (replica divergence)",
                    name(prev),
                    name(decision)
                ));
            }
        }
        if conflict.is_none()
            && tx.by_shard.values().any(|&d| d == DECISION_COMMIT)
            && tx.by_shard.values().any(|&d| d == DECISION_ABORT)
        {
            let mix: Vec<String> = tx
                .by_shard
                .iter()
                .map(|(sh, &d)| format!("{sh}:{}", name(d)))
                .collect();
            conflict = Some(format!(
                "xshard: tx {xid} mixed decisions [{}] (atomicity broken)",
                mix.join(" ")
            ));
        }
        if !tx.done && tx.by_shard.len() as u32 >= tx.n_shards {
            if tx.by_shard.values().all(|&d| d == DECISION_COMMIT) {
                tx.done = true;
                s.committed += 1;
            } else if tx.by_shard.values().all(|&d| d == DECISION_ABORT) {
                tx.done = true;
                s.aborted += 1;
            }
        }
        if let Some(text) = conflict {
            // One report per transaction: later records for a poisoned tx
            // would otherwise re-flag it every tick.
            if s.flagged.insert(xid) {
                s.violations += 1;
                s.pending.push(text);
            }
        }
    }

    /// Returns violations found since the last drain (for the online
    /// invariant checker's external-check hook).
    pub fn drain_violations(&self) -> Vec<String> {
        std::mem::take(&mut self.inner.lock().unwrap().pending)
    }

    /// Total violations ever observed (drained or not).
    pub fn violation_count(&self) -> u64 {
        self.inner.lock().unwrap().violations
    }

    /// True when no violation was ever observed.
    pub fn ok(&self) -> bool {
        self.violation_count() == 0
    }

    /// Aggregate counts.
    pub fn counts(&self) -> LedgerCounts {
        let s = self.inner.lock().unwrap();
        let done = s.txs.values().filter(|t| t.done).count() as u64;
        LedgerCounts {
            committed: s.committed,
            aborted: s.aborted,
            in_flight: s.txs.len() as u64 - done,
            violations: s.violations,
        }
    }
}

fn name(decision: u8) -> &'static str {
    match decision {
        DECISION_COMMIT => "commit",
        DECISION_ABORT => "abort",
        _ => "?",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_commit_all_shards() {
        let ledger = XShardLedger::new();
        // Two replicas per shard record the same decision.
        for _ in 0..2 {
            ledger.record(1, 0, 2, DECISION_COMMIT);
            ledger.record(1, 1, 2, DECISION_COMMIT);
        }
        assert!(ledger.ok());
        let c = ledger.counts();
        assert_eq!((c.committed, c.aborted, c.in_flight), (1, 0, 0));
    }

    #[test]
    fn clean_abort_all_shards() {
        let ledger = XShardLedger::new();
        ledger.record(2, 0, 2, DECISION_ABORT);
        ledger.record(2, 1, 2, DECISION_ABORT);
        assert!(ledger.ok());
        assert_eq!(ledger.counts().aborted, 1);
    }

    #[test]
    fn mixed_decision_is_a_violation_reported_once() {
        let ledger = XShardLedger::new();
        ledger.record(3, 0, 2, DECISION_COMMIT);
        ledger.record(3, 1, 2, DECISION_ABORT);
        ledger.record(3, 1, 2, DECISION_ABORT);
        assert!(!ledger.ok());
        assert_eq!(ledger.drain_violations().len(), 1);
        assert!(ledger.drain_violations().is_empty());
        assert_eq!(ledger.violation_count(), 1);
    }

    #[test]
    fn replica_divergence_within_a_shard_is_a_violation() {
        let ledger = XShardLedger::new();
        ledger.record(4, 0, 1, DECISION_COMMIT);
        ledger.record(4, 0, 1, DECISION_ABORT);
        assert_eq!(ledger.violation_count(), 1);
    }

    #[test]
    fn in_flight_is_not_a_violation() {
        let ledger = XShardLedger::new();
        ledger.record(5, 0, 3, DECISION_COMMIT);
        assert!(ledger.ok());
        assert_eq!(ledger.counts().in_flight, 1);
    }
}
