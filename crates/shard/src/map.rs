//! Deterministic RTU/substation → shard assignment.

use std::collections::BTreeMap;

/// FNV-1a over a byte slice — stable, dependency-free, and good enough to
/// spread sequential RTU ids across groups.
fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0100_0000_01b3);
    }
    h
}

/// Maps every RTU (substation) to its owning replication group.
///
/// The default placement is stable hashing of the RTU id, so adding RTUs
/// never moves existing ones between runs of the same shard count.
/// Explicit overrides pin chosen RTUs to chosen groups (e.g. keeping a
/// region's substations co-located regardless of hash).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardMap {
    shards: u32,
    overrides: BTreeMap<u32, u32>,
}

impl ShardMap {
    /// A map over `shards` groups with no overrides.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn new(shards: u32) -> ShardMap {
        assert!(shards > 0, "shard map needs at least one shard");
        ShardMap {
            shards,
            overrides: BTreeMap::new(),
        }
    }

    /// Adds explicit placements (rtu → shard); invalid targets panic.
    pub fn with_overrides(mut self, overrides: BTreeMap<u32, u32>) -> ShardMap {
        for (&rtu, &shard) in &overrides {
            assert!(
                shard < self.shards,
                "override rtu {rtu} -> shard {shard} out of range (shards={})",
                self.shards
            );
        }
        self.overrides.extend(overrides);
        self
    }

    /// Number of groups.
    pub fn shards(&self) -> u32 {
        self.shards
    }

    /// The group owning `rtu`.
    pub fn shard_of(&self, rtu: u32) -> u32 {
        if let Some(&shard) = self.overrides.get(&rtu) {
            return shard;
        }
        (fnv64(&rtu.to_le_bytes()) % self.shards as u64) as u32
    }

    /// Partitions `rtus` into per-group buckets (index = group id).
    pub fn partition(&self, rtus: impl IntoIterator<Item = u32>) -> Vec<Vec<u32>> {
        let mut buckets = vec![Vec::new(); self.shards as usize];
        for rtu in rtus {
            buckets[self.shard_of(rtu) as usize].push(rtu);
        }
        buckets
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stable_across_instances() {
        let a = ShardMap::new(4);
        let b = ShardMap::new(4);
        for rtu in 0..1000 {
            assert_eq!(a.shard_of(rtu), b.shard_of(rtu));
        }
    }

    #[test]
    fn single_shard_owns_everything() {
        let m = ShardMap::new(1);
        for rtu in 0..100 {
            assert_eq!(m.shard_of(rtu), 0);
        }
    }

    #[test]
    fn spread_is_roughly_uniform() {
        let m = ShardMap::new(4);
        let buckets = m.partition(0..1024);
        for bucket in &buckets {
            // 1024 RTUs over 4 groups: each bucket within 2x of fair share.
            assert!(
                bucket.len() > 128 && bucket.len() < 512,
                "skewed bucket: {}",
                bucket.len()
            );
        }
    }

    #[test]
    fn overrides_win() {
        let m = ShardMap::new(4).with_overrides(BTreeMap::from([(7, 3), (8, 0)]));
        assert_eq!(m.shard_of(7), 3);
        assert_eq!(m.shard_of(8), 0);
    }

    #[test]
    fn partition_covers_all() {
        let m = ShardMap::new(3);
        let buckets = m.partition(0..30);
        assert_eq!(buckets.iter().map(Vec::len).sum::<usize>(), 30);
    }

    #[test]
    #[should_panic]
    fn zero_shards_rejected() {
        ShardMap::new(0);
    }

    #[test]
    #[should_panic]
    fn out_of_range_override_rejected() {
        ShardMap::new(2).with_overrides(BTreeMap::from([(0, 5)]));
    }
}
