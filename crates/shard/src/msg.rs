//! Cross-shard wire codecs: transaction commands, the 2PC-over-BFT
//! operation payloads, and the reply payloads participants produce.
//!
//! Cross-shard operations travel as ordinary Prime client operations —
//! the payload's first byte distinguishes them from SCADA ops (SCADA uses
//! tags 1..=3, cross-shard uses 240..). Replies are likewise tagged so
//! the coordinator can parse votes and acks out of standard `Reply`
//! messages without any protocol change in `spire-prime`.

use bytes::Bytes;
use spire_crypto::Digest;
use spire_prime::ReplyCert;
use spire_sim::{WireError, WireReader, WireWriter};

/// Operation payload tags (first byte). SCADA ops use 1..=3; keep these
/// high so the two app namespaces never collide.
pub mod op_tag {
    /// Coordinator-group prepare order.
    pub const XPREPARE: u8 = 240;
    /// Participant-group commit order (carries the prepare certificate).
    pub const XCOMMIT: u8 = 241;
    /// Participant-group abort order.
    pub const XABORT: u8 = 242;
}

/// Reply payload tags (first byte of a `Reply.result`).
pub mod reply_tag {
    /// Prepare vote: `[tag][xid u64][digest 32]`.
    pub const PREPARED: u8 = 243;
    /// Prepare rejection: `[tag][xid u64]`.
    pub const REJECTED: u8 = 244;
    /// Decision acknowledgement: `[tag][xid u64][decision u8]`.
    pub const ACK: u8 = 245;
}

/// Transaction decision values.
pub const DECISION_COMMIT: u8 = 1;
/// See [`DECISION_COMMIT`].
pub const DECISION_ABORT: u8 = 2;

/// Command kinds inside a cross-shard transaction.
pub mod cmd_kind {
    /// Open breaker `a` on the target RTU.
    pub const OPEN_BREAKER: u8 = 1;
    /// Close breaker `a` on the target RTU.
    pub const CLOSE_BREAKER: u8 = 2;
    /// Set register `a` to value `b` on the target RTU.
    pub const SET_REGISTER: u8 = 3;
}

/// Sanity caps on vector lengths in decoded messages.
const MAX_SHARDS: usize = 64;
const MAX_CMDS: usize = 256;

/// One supervisory command inside a cross-shard transaction, tagged with
/// the shard that must apply it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardCmd {
    /// Owning group of `rtu` (precomputed via the shard map so every
    /// participant agrees without re-deriving placement).
    pub shard: u32,
    /// Target RTU.
    pub rtu: u32,
    /// One of [`cmd_kind`].
    pub kind: u8,
    /// First argument (breaker id or register address).
    pub a: u16,
    /// Second argument (register value; unused for breakers).
    pub b: u16,
}

impl ShardCmd {
    fn write_into(&self, w: &mut WireWriter) {
        w.u32(self.shard)
            .u32(self.rtu)
            .u8(self.kind)
            .u16(self.a)
            .u16(self.b);
    }

    fn read(r: &mut WireReader) -> Result<ShardCmd, WireError> {
        Ok(ShardCmd {
            shard: r.u32()?,
            rtu: r.u32()?,
            kind: r.u8()?,
            a: r.u16()?,
            b: r.u16()?,
        })
    }
}

/// A cross-shard operation payload, submitted to a group as an ordinary
/// (signed) Prime client op.
#[derive(Clone, Debug, PartialEq)]
pub enum ShardMsg {
    /// Ordered by the coordinator group; each replica votes by replying
    /// with the prepare digest (or a rejection).
    XPrepare {
        /// Transaction id, unique per coordinator.
        xid: u64,
        /// Group acting as 2PC coordinator (owner of the lowest shard).
        coord_shard: u32,
        /// Coordinator-side issue timestamp (µs), for end-to-end latency.
        ts_us: u64,
        /// Participant groups (sorted, deduplicated).
        shards: Vec<u32>,
        /// The transaction body.
        cmds: Vec<ShardCmd>,
        /// Poisoned prepares are rejected by every honest replica — the
        /// deterministic stand-in for an infeasible command (abort path).
        poison: bool,
    },
    /// Ordered by every participant group once the coordinator holds a
    /// prepare certificate; applying replicas ack and execute their own
    /// shard's commands.
    XCommit {
        /// Transaction id.
        xid: u64,
        /// Group whose replicas signed the certificate's votes.
        coord_shard: u32,
        /// Issue timestamp copied from the prepare.
        ts_us: u64,
        /// Participant groups.
        shards: Vec<u32>,
        /// The transaction body (re-sent; its digest must match the
        /// certified vote).
        cmds: Vec<ShardCmd>,
        /// f+1 prepare votes from the coordinator group.
        cert: ReplyCert,
    },
    /// Ordered by every participant group when the prepare phase failed
    /// (rejection quorum or retry budget exhausted before a certificate).
    XAbort {
        /// Transaction id.
        xid: u64,
        /// Coordinator group.
        coord_shard: u32,
        /// Participant groups.
        shards: Vec<u32>,
    },
}

fn write_u32s(w: &mut WireWriter, v: &[u32]) {
    w.u8(v.len() as u8);
    for &x in v {
        w.u32(x);
    }
}

fn read_u32s(r: &mut WireReader) -> Result<Vec<u32>, WireError> {
    let n = r.u8()? as usize;
    if n > MAX_SHARDS {
        return Err(WireError::OversizedLength(n as u64));
    }
    (0..n).map(|_| r.u32()).collect()
}

fn write_cmds(w: &mut WireWriter, v: &[ShardCmd]) {
    w.u16(v.len() as u16);
    for cmd in v {
        cmd.write_into(w);
    }
}

fn read_cmds(r: &mut WireReader) -> Result<Vec<ShardCmd>, WireError> {
    let n = r.u16()? as usize;
    if n > MAX_CMDS {
        return Err(WireError::OversizedLength(n as u64));
    }
    (0..n).map(|_| ShardCmd::read(r)).collect()
}

impl ShardMsg {
    /// True when a client-op payload starting with `first` is cross-shard.
    pub fn is_shard_op(first: u8) -> bool {
        (op_tag::XPREPARE..=op_tag::XABORT).contains(&first)
    }

    /// Encodes to canonical bytes.
    pub fn encode(&self) -> Bytes {
        let mut w = WireWriter::with_capacity(128);
        match self {
            ShardMsg::XPrepare {
                xid,
                coord_shard,
                ts_us,
                shards,
                cmds,
                poison,
            } => {
                w.u8(op_tag::XPREPARE)
                    .u64(*xid)
                    .u32(*coord_shard)
                    .u64(*ts_us);
                write_u32s(&mut w, shards);
                write_cmds(&mut w, cmds);
                w.bool(*poison);
            }
            ShardMsg::XCommit {
                xid,
                coord_shard,
                ts_us,
                shards,
                cmds,
                cert,
            } => {
                w.u8(op_tag::XCOMMIT)
                    .u64(*xid)
                    .u32(*coord_shard)
                    .u64(*ts_us);
                write_u32s(&mut w, shards);
                write_cmds(&mut w, cmds);
                cert.write_into(&mut w);
            }
            ShardMsg::XAbort {
                xid,
                coord_shard,
                shards,
            } => {
                w.u8(op_tag::XABORT).u64(*xid).u32(*coord_shard);
                write_u32s(&mut w, shards);
            }
        }
        w.finish()
    }

    /// Decodes canonical bytes.
    pub fn decode(bytes: &[u8]) -> Result<ShardMsg, WireError> {
        let mut r = WireReader::new(bytes);
        let msg = match r.u8()? {
            op_tag::XPREPARE => ShardMsg::XPrepare {
                xid: r.u64()?,
                coord_shard: r.u32()?,
                ts_us: r.u64()?,
                shards: read_u32s(&mut r)?,
                cmds: read_cmds(&mut r)?,
                poison: r.bool()?,
            },
            op_tag::XCOMMIT => ShardMsg::XCommit {
                xid: r.u64()?,
                coord_shard: r.u32()?,
                ts_us: r.u64()?,
                shards: read_u32s(&mut r)?,
                cmds: read_cmds(&mut r)?,
                cert: ReplyCert::read(&mut r)?,
            },
            op_tag::XABORT => ShardMsg::XAbort {
                xid: r.u64()?,
                coord_shard: r.u32()?,
                shards: read_u32s(&mut r)?,
            },
            other => return Err(WireError::BadTag(other)),
        };
        r.expect_end()?;
        Ok(msg)
    }

    /// The digest every honest replica votes on in its prepare reply:
    /// a hash of the canonical transaction body, binding xid, timestamp,
    /// participant set, and every command.
    pub fn prepare_digest(xid: u64, ts_us: u64, shards: &[u32], cmds: &[ShardCmd]) -> Digest {
        let mut w = WireWriter::with_capacity(64);
        w.u64(xid).u64(ts_us);
        write_u32s(&mut w, shards);
        write_cmds(&mut w, cmds);
        spire_crypto::digest(w.as_slice())
    }
}

/// A parsed cross-shard reply payload (`Reply.result` bytes).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum XReply {
    /// Prepare vote carrying the transaction digest.
    Prepared {
        /// Transaction id.
        xid: u64,
        /// Digest of the prepared transaction body.
        digest: Digest,
    },
    /// Prepare rejection.
    Rejected {
        /// Transaction id.
        xid: u64,
    },
    /// Commit/abort acknowledgement.
    Ack {
        /// Transaction id.
        xid: u64,
        /// [`DECISION_COMMIT`] or [`DECISION_ABORT`].
        decision: u8,
    },
}

/// Encodes a prepare vote.
pub fn encode_prepared(xid: u64, digest: &Digest) -> Vec<u8> {
    let mut w = WireWriter::with_capacity(41);
    w.u8(reply_tag::PREPARED).u64(xid).raw(digest);
    w.into_vec()
}

/// Encodes a prepare rejection.
pub fn encode_rejected(xid: u64) -> Vec<u8> {
    let mut w = WireWriter::with_capacity(9);
    w.u8(reply_tag::REJECTED).u64(xid);
    w.into_vec()
}

/// Encodes a decision acknowledgement.
pub fn encode_ack(xid: u64, decision: u8) -> Vec<u8> {
    let mut w = WireWriter::with_capacity(10);
    w.u8(reply_tag::ACK).u64(xid).u8(decision);
    w.into_vec()
}

/// Parses a reply payload; `None` for anything that is not a well-formed
/// cross-shard reply (e.g. SCADA `"ok"` replies).
pub fn parse_reply(bytes: &[u8]) -> Option<XReply> {
    let mut r = WireReader::new(bytes);
    let reply = match r.u8().ok()? {
        reply_tag::PREPARED => XReply::Prepared {
            xid: r.u64().ok()?,
            digest: r.array().ok()?,
        },
        reply_tag::REJECTED => XReply::Rejected { xid: r.u64().ok()? },
        reply_tag::ACK => XReply::Ack {
            xid: r.u64().ok()?,
            decision: r.u8().ok()?,
        },
        _ => return None,
    };
    r.expect_end().ok()?;
    Some(reply)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cmds() -> Vec<ShardCmd> {
        vec![
            ShardCmd {
                shard: 0,
                rtu: 3,
                kind: cmd_kind::OPEN_BREAKER,
                a: 1,
                b: 0,
            },
            ShardCmd {
                shard: 2,
                rtu: 17,
                kind: cmd_kind::SET_REGISTER,
                a: 40,
                b: 9000,
            },
        ]
    }

    #[test]
    fn roundtrip_all_variants() {
        let msgs = vec![
            ShardMsg::XPrepare {
                xid: 7,
                coord_shard: 0,
                ts_us: 123_456,
                shards: vec![0, 2],
                cmds: cmds(),
                poison: false,
            },
            ShardMsg::XCommit {
                xid: 7,
                coord_shard: 0,
                ts_us: 123_456,
                shards: vec![0, 2],
                cmds: cmds(),
                cert: ReplyCert {
                    result: Bytes::from_static(b"vote"),
                    frames: vec![Bytes::from_static(b"f0"), Bytes::from_static(b"f1")],
                },
            },
            ShardMsg::XAbort {
                xid: 9,
                coord_shard: 1,
                shards: vec![1, 3],
            },
        ];
        for msg in msgs {
            let bytes = msg.encode();
            assert!(ShardMsg::is_shard_op(bytes[0]));
            assert_eq!(ShardMsg::decode(&bytes).unwrap(), msg);
        }
    }

    #[test]
    fn reply_payloads_roundtrip() {
        let digest = [7u8; 32];
        assert_eq!(
            parse_reply(&encode_prepared(5, &digest)),
            Some(XReply::Prepared { xid: 5, digest })
        );
        assert_eq!(
            parse_reply(&encode_rejected(6)),
            Some(XReply::Rejected { xid: 6 })
        );
        assert_eq!(
            parse_reply(&encode_ack(8, DECISION_COMMIT)),
            Some(XReply::Ack {
                xid: 8,
                decision: DECISION_COMMIT
            })
        );
        assert_eq!(parse_reply(b"ok"), None);
        assert_eq!(parse_reply(&[]), None);
    }

    #[test]
    fn digest_binds_every_field() {
        let base = ShardMsg::prepare_digest(1, 2, &[0, 1], &cmds());
        assert_ne!(base, ShardMsg::prepare_digest(2, 2, &[0, 1], &cmds()));
        assert_ne!(base, ShardMsg::prepare_digest(1, 3, &[0, 1], &cmds()));
        assert_ne!(base, ShardMsg::prepare_digest(1, 2, &[0, 2], &cmds()));
        let mut other = cmds();
        other[0].a = 2;
        assert_ne!(base, ShardMsg::prepare_digest(1, 2, &[0, 1], &other));
    }

    #[test]
    fn truncation_and_bad_tags_rejected() {
        let bytes = ShardMsg::XAbort {
            xid: 9,
            coord_shard: 1,
            shards: vec![1, 3],
        }
        .encode();
        for cut in 0..bytes.len() {
            assert!(ShardMsg::decode(&bytes[..cut]).is_err());
        }
        assert!(ShardMsg::decode(&[1, 2, 3]).is_err());
    }
}
