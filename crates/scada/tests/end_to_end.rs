//! End-to-end SCADA loop over direct links (no overlay): field devices
//! report through proxies into a replicated master group, an HMI issues a
//! breaker command, and the command round-trips back to the device only
//! after f+1 replicas agree.

use spire_crypto::keys::Signer;
use spire_crypto::{KeyMaterial, KeyStore, NodeId};
use spire_prime::client::ClientRouting;
use spire_prime::{ByzBehavior, ClientId, Inspection, PrimeConfig, Replica, ReplicaId};
use spire_scada::{
    Archive, Historian, Hmi, ProcessModel, Rtu, RtuProxy, ScadaDirectory, ScadaMaster,
};
use spire_sim::{LinkConfig, ProcessId, Span, World};
use std::collections::BTreeMap;
use std::sync::Arc;

fn link() -> LinkConfig {
    LinkConfig {
        latency: Span::millis(1),
        jitter: Span::micros(200),
        loss: 0.0,
        corrupt: 0.0,
        dup: 0.0,
        bandwidth_bps: None,
        max_queue: Span::secs(1),
    }
}

struct TestBed {
    world: World,
    inspection: Inspection,
    n_rtus: u32,
    archive: Archive,
}

fn build(seed: u64, n_rtus: u32, byz: BTreeMap<u32, ByzBehavior>) -> TestBed {
    let cfg = {
        let mut c = PrimeConfig::new(1, 0); // n = 4
        c.progress_timeout = Span::secs(2);
        c
    };
    let mut world = World::new(seed);
    let material = KeyMaterial::new([7u8; 32]);
    let keystore = Arc::new(KeyStore::for_nodes(&material, 4096));
    let inspection = Inspection::new();

    let mut directory = ScadaDirectory::default();
    for r in 0..n_rtus {
        directory.rtu_proxy.insert(r, r);
    }
    directory.hmis.push(1000);
    directory.hmis.push(1001); // the historian subscribes to events too

    // Process id layout: replicas, then per-RTU (device, proxy), then HMI.
    let first = world.process_count() as u32;
    let replica_pids: Vec<ProcessId> = (0..cfg.n).map(|i| ProcessId(first + i)).collect();
    let mut client_pids: BTreeMap<u32, ProcessId> = BTreeMap::new();
    for r in 0..n_rtus {
        client_pids.insert(r, ProcessId(first + cfg.n + 2 * r + 1)); // proxies
    }
    client_pids.insert(1000, ProcessId(first + cfg.n + 2 * n_rtus)); // HMI
    client_pids.insert(1001, ProcessId(first + cfg.n + 2 * n_rtus + 1)); // historian

    for i in 0..cfg.n {
        let signer = Signer::new(
            material.signing_key(NodeId(cfg.replica_key_base + i)),
            false,
        );
        let net = spire_prime::DirectNet {
            replicas: replica_pids.clone(),
            clients: client_pids.clone(),
        };
        let replica = Replica::new(
            cfg.clone(),
            ReplicaId(i),
            byz.get(&i).copied().unwrap_or(ByzBehavior::Honest),
            Arc::clone(&keystore),
            signer,
            Box::new(net),
            Box::new(ScadaMaster::new(directory.clone())),
            false,
        )
        .with_inspection(inspection.clone());
        world.add_process(&format!("replica-{i}"), Box::new(replica));
    }
    for r in 0..n_rtus {
        let device_pid = ProcessId(first + cfg.n + 2 * r);
        let proxy_pid = ProcessId(first + cfg.n + 2 * r + 1);
        let device = Rtu::new(r, proxy_pid, Span::millis(250), ProcessModel::default());
        assert_eq!(
            world.add_process(&format!("rtu-{r}"), Box::new(device)),
            device_pid
        );
        let signer = Signer::new(material.signing_key(NodeId(cfg.client_key_base + r)), false);
        let proxy = RtuProxy::new(
            cfg.clone(),
            r,
            ClientId(r),
            signer,
            ClientRouting::Direct(replica_pids.clone()),
            device_pid,
        );
        assert_eq!(
            world.add_process(&format!("proxy-{r}"), Box::new(proxy)),
            proxy_pid
        );
        world.add_link(device_pid, proxy_pid, LinkConfig::local());
        for rp in &replica_pids {
            world.add_link(proxy_pid, *rp, link());
        }
    }
    let signer = Signer::new(
        material.signing_key(NodeId(cfg.client_key_base + 1000)),
        false,
    );
    let hmi = Hmi::new(
        cfg.clone(),
        ClientId(1000),
        signer,
        ClientRouting::Direct(replica_pids.clone()),
        (0..n_rtus).collect(),
        Span::secs(3),
        2,
    );
    let hmi_pid = world.add_process("hmi", Box::new(hmi));
    assert_eq!(hmi_pid, client_pids[&1000]);
    for rp in &replica_pids {
        world.add_link(hmi_pid, *rp, link());
    }
    let archive = Archive::new();
    let historian = Historian::new(cfg.clone(), ClientId(1001), archive.clone());
    let historian_pid = world.add_process("historian", Box::new(historian));
    assert_eq!(historian_pid, client_pids[&1001]);
    for rp in &replica_pids {
        world.add_link(historian_pid, *rp, link());
    }
    // Replicas full mesh.
    for i in 0..replica_pids.len() {
        for j in (i + 1)..replica_pids.len() {
            world.add_link(replica_pids[i], replica_pids[j], link());
        }
    }
    TestBed {
        world,
        inspection,
        n_rtus,
        archive,
    }
}

#[test]
fn device_updates_flow_to_replicated_masters() {
    let mut bed = build(1, 3, BTreeMap::new());
    bed.world.run_for(Span::secs(10));
    let m = bed.world.metrics();
    let sent = m.counter("scada.updates_sent");
    let confirmed = m.counter("scada.updates_confirmed");
    // 3 RTUs at 4 reports/s for 10 s.
    assert!(sent >= 110, "sent={sent}");
    assert_eq!(confirmed, sent);
    bed.inspection.check_safety(&[0, 1, 2, 3]).expect("safety");
    // Latency well under the SLA on a LAN.
    let lats = m.values("scada.update_latency_ms");
    let mean = lats.iter().sum::<f64>() / lats.len() as f64;
    assert!(mean < 100.0, "mean={mean}");
}

#[test]
fn hmi_command_actuates_breaker_through_consensus() {
    let mut bed = build(2, 2, BTreeMap::new());
    // Inject a *spontaneous* breaker trip at the device (a grid event, not
    // an operator command) at t=6 s: coil 1 of RTU 0 opens by itself.
    let device0 = ProcessId(4); // 4 replicas, then (device, proxy) pairs
    let proxy0 = ProcessId(5);
    bed.world.inject_message(
        spire_sim::Time(6_000_000),
        proxy0,
        device0,
        spire_scada::ModbusFrame::WriteCoil {
            txn: 999,
            coil: 1,
            on: false,
        }
        .encode(),
    );
    bed.world.run_for(Span::secs(12));
    let m = bed.world.metrics();
    // The HMI issued 2 commands; each was ordered, pushed to the right
    // proxy by f+1 replicas, actuated at the device, and acknowledged.
    assert_eq!(m.counter("hmi.commands_sent"), 2);
    assert_eq!(m.counter("hmi.commands_acked"), 2);
    assert_eq!(m.counter("scada.commands_actuated"), 2);
    assert!(m.counter("rtu0.coil_writes") + m.counter("rtu1.coil_writes") == 3);
    // Command latency was recorded.
    assert_eq!(m.values("scada.command_latency_ms").len(), 2);
    // Commanded transitions are applied optimistically by the masters and
    // do not alarm; the *spontaneous* trip does, on the next report.
    assert!(
        m.counter("hmi.alarms") >= 1,
        "no alarm for spontaneous trip"
    );
    // The historian archived the same f+1-validated event and can answer
    // incident queries about it.
    assert!(!bed.archive.is_empty(), "historian archived nothing");
    let history = bed.archive.breaker_history(0, 1);
    assert_eq!(history.len(), 1);
    assert!(!history[0].closed, "the trip opened the breaker");
    assert!(history[0].archived_at.0 > 6_000_000);
}

#[test]
fn one_divergent_master_cannot_mislead_proxies_or_devices() {
    let mut byz = BTreeMap::new();
    byz.insert(1u32, ByzBehavior::DivergentExec);
    let mut bed = build(3, 2, byz);
    bed.world.run_for(Span::secs(12));
    let m = bed.world.metrics();
    // Proxies still confirm everything (f+1 honest matching replies).
    assert_eq!(
        m.counter("scada.updates_confirmed"),
        m.counter("scada.updates_sent")
    );
    // Commands still actuate exactly as issued.
    assert_eq!(
        m.counter("scada.commands_actuated"),
        m.counter("hmi.commands_sent")
    );
    bed.inspection.check_safety(&[0, 2, 3]).expect("safety");
    let _ = bed.n_rtus;
}
