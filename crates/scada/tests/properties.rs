//! Property-based tests of the SCADA layer: codec roundtrips and state
//! machine determinism/snapshot fidelity under arbitrary op sequences.

use proptest::prelude::*;
use spire_prime::Application;
use spire_scada::{CommandAction, ModbusFrame, ScadaDirectory, ScadaMaster, ScadaOp};

fn arb_action() -> impl Strategy<Value = CommandAction> {
    prop_oneof![
        any::<u8>().prop_map(CommandAction::OpenBreaker),
        any::<u8>().prop_map(CommandAction::CloseBreaker),
        (any::<u16>(), any::<u16>()).prop_map(|(a, v)| CommandAction::SetRegister(a, v)),
    ]
}

fn arb_op() -> impl Strategy<Value = ScadaOp> {
    prop_oneof![
        (
            0u32..8,
            any::<u64>(),
            proptest::collection::vec((any::<u16>(), any::<u16>()), 0..8),
            proptest::collection::vec((any::<u8>(), any::<bool>()), 0..4),
        )
            .prop_map(|(rtu, ts_us, registers, breakers)| ScadaOp::DeviceUpdate {
                rtu,
                ts_us,
                registers,
                breakers,
            }),
        (0u32..8, any::<u64>(), arb_action())
            .prop_map(|(rtu, ts_us, action)| { ScadaOp::Command { rtu, ts_us, action } }),
        (0u32..8).prop_map(|rtu| ScadaOp::ReadState { rtu }),
    ]
}

fn arb_modbus() -> impl Strategy<Value = ModbusFrame> {
    prop_oneof![
        (any::<u16>(), any::<u16>(), any::<u16>())
            .prop_map(|(txn, addr, count)| ModbusFrame::ReadRegisters { txn, addr, count }),
        (
            any::<u16>(),
            any::<u16>(),
            proptest::collection::vec(any::<u16>(), 0..16)
        )
            .prop_map(|(txn, addr, values)| ModbusFrame::ReadResponse {
                txn,
                addr,
                values
            }),
        (any::<u16>(), any::<u8>(), any::<bool>())
            .prop_map(|(txn, coil, on)| ModbusFrame::WriteCoil { txn, coil, on }),
        (any::<u16>(), any::<u16>(), any::<u16>())
            .prop_map(|(txn, addr, value)| ModbusFrame::WriteRegister { txn, addr, value }),
        any::<u16>().prop_map(|txn| ModbusFrame::WriteAck { txn }),
        (
            any::<u64>(),
            proptest::collection::vec((any::<u16>(), any::<u16>()), 0..16),
            proptest::collection::vec((any::<u8>(), any::<bool>()), 0..8),
        )
            .prop_map(|(ts_us, registers, coils)| ModbusFrame::Report {
                ts_us,
                registers,
                coils,
            }),
    ]
}

fn directory() -> ScadaDirectory {
    let mut d = ScadaDirectory::default();
    for r in 0..8 {
        d.rtu_proxy.insert(r, 100 + r);
    }
    d.hmis.push(500);
    d
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn scada_op_roundtrip(op in arb_op()) {
        prop_assert_eq!(ScadaOp::decode(&op.encode()).unwrap(), op);
    }

    #[test]
    fn modbus_roundtrip(frame in arb_modbus()) {
        prop_assert_eq!(ModbusFrame::decode(&frame.encode()).unwrap(), frame);
    }

    #[test]
    fn scada_decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = ScadaOp::decode(&bytes);
        let _ = ModbusFrame::decode(&bytes);
    }

    #[test]
    fn master_determinism(ops in proptest::collection::vec(arb_op(), 0..64)) {
        let mut a = ScadaMaster::new(directory());
        let mut b = ScadaMaster::new(directory());
        for op in &ops {
            let encoded = op.encode();
            prop_assert_eq!(a.execute(&encoded), b.execute(&encoded));
        }
        prop_assert_eq!(a.digest(), b.digest());
    }

    #[test]
    fn master_snapshot_restore_is_exact(ops in proptest::collection::vec(arb_op(), 0..48),
                                        tail in proptest::collection::vec(arb_op(), 0..16)) {
        let mut original = ScadaMaster::new(directory());
        for op in &ops {
            original.execute(&op.encode());
        }
        let mut restored = ScadaMaster::new(directory());
        restored.restore(&original.snapshot());
        prop_assert_eq!(restored.digest(), original.digest());
        // Continued execution stays in lockstep (nseq counters included).
        for op in &tail {
            let encoded = op.encode();
            prop_assert_eq!(restored.execute(&encoded), original.execute(&encoded));
        }
    }
}
