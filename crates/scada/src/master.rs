//! The replicated SCADA master: the application state machine ordered by
//! Prime. It maintains the grid state (per-RTU registers and breakers),
//! raises events toward the HMI, and emits supervisory commands toward RTU
//! proxies as replica notifications.

use crate::op::{CommandAction, ScadaOp};
use spire_crypto::Digest;
use spire_prime::{Application, ClientId, ExecResult, Notification};
use spire_shard::msg::op_tag;
use spire_shard::{CertVerifier, ShardMsg, XParticipant, XShardLedger};
use spire_sim::{WireReader, WireWriter};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Static wiring of the SCADA deployment, identical on every replica.
#[derive(Clone, Debug, Default)]
pub struct ScadaDirectory {
    /// RTU id -> the Prime client id of its proxy.
    pub rtu_proxy: BTreeMap<u32, u32>,
    /// Client ids of HMIs (receive event notifications).
    pub hmis: Vec<u32>,
}

#[derive(Clone, Debug, Default, PartialEq, Eq)]
struct RtuState {
    registers: BTreeMap<u16, u16>,
    breakers: BTreeMap<u8, bool>,
    last_update_us: u64,
    updates_applied: u64,
}

/// Cross-shard wiring for a sharded deployment: the 2PC participant state
/// machine plus the (non-replicated) certificate verifier and decision
/// ledger shared with the invariant checker.
#[derive(Clone, Debug)]
pub struct XShardContext {
    /// Ordered, deterministic participant state (part of snapshots).
    pub participant: XParticipant,
    /// Verifies prepare certificates from any coordinator group.
    pub verifier: CertVerifier,
    /// Deployment-wide atomicity ledger (side channel, not state).
    pub ledger: Arc<XShardLedger>,
}

/// The replicated state machine.
#[derive(Clone, Debug, Default)]
pub struct ScadaMaster {
    directory: ScadaDirectory,
    rtus: BTreeMap<u32, RtuState>,
    /// Deterministic per-target notification counters.
    nseq: BTreeMap<u32, u64>,
    events: u64,
    /// Present only in sharded deployments.
    xshard: Option<XShardContext>,
}

impl ScadaMaster {
    /// Creates a master with the deployment directory.
    pub fn new(directory: ScadaDirectory) -> ScadaMaster {
        ScadaMaster {
            directory,
            ..Default::default()
        }
    }

    /// Enables cross-shard transaction participation.
    pub fn with_xshard(mut self, ctx: XShardContext) -> ScadaMaster {
        self.xshard = Some(ctx);
        self
    }

    /// Applies a supervisory action to the model and notifies the target
    /// RTU's proxy — shared by HMI commands and committed cross-shard
    /// transactions.
    fn actuate(&mut self, rtu: u32, ts_us: u64, action: CommandAction) -> Vec<Notification> {
        {
            let state = self.rtus.entry(rtu).or_default();
            match action {
                CommandAction::OpenBreaker(b) => {
                    state.breakers.insert(b, false);
                }
                CommandAction::CloseBreaker(b) => {
                    state.breakers.insert(b, true);
                }
                CommandAction::SetRegister(a, v) => {
                    state.registers.insert(a, v);
                }
            }
        }
        let mut notifications = Vec::new();
        if let Some(proxy) = self.directory.rtu_proxy.get(&rtu).copied() {
            let mut w = WireWriter::new();
            w.u8(notify_kind::COMMAND).u32(rtu).u64(ts_us);
            match action {
                CommandAction::OpenBreaker(b) => {
                    w.u8(1).u8(b);
                }
                CommandAction::CloseBreaker(b) => {
                    w.u8(2).u8(b);
                }
                CommandAction::SetRegister(a, v) => {
                    w.u8(3).u16(a).u16(v);
                }
            }
            let payload = w.finish().to_vec();
            notifications.push(self.notify(proxy, payload));
        }
        notifications
    }

    /// Executes an ordered cross-shard operation through the embedded
    /// participant, applying own-shard commands on a first commit.
    fn execute_xshard(&mut self, op: &[u8]) -> ExecResult {
        let Some(ctx) = self.xshard.as_mut() else {
            return ExecResult::reply(b"err:not-sharded".to_vec());
        };
        let Ok(msg) = ShardMsg::decode(op) else {
            return ExecResult::reply(b"err:decode".to_vec());
        };
        let verifier = ctx.verifier.clone();
        let outcome = ctx.participant.execute(&msg, &verifier);
        if let Some(decision) = &outcome.decision {
            ctx.ledger.record(
                decision.xid,
                ctx.participant.shard(),
                decision.shards.len() as u32,
                decision.decision,
            );
        }
        let ts_us = match &msg {
            ShardMsg::XCommit { ts_us, .. } => *ts_us,
            _ => 0,
        };
        let mut notifications = Vec::new();
        for cmd in &outcome.applies {
            let action = match cmd.kind {
                spire_shard::msg::cmd_kind::OPEN_BREAKER => CommandAction::OpenBreaker(cmd.a as u8),
                spire_shard::msg::cmd_kind::CLOSE_BREAKER => {
                    CommandAction::CloseBreaker(cmd.a as u8)
                }
                spire_shard::msg::cmd_kind::SET_REGISTER => {
                    CommandAction::SetRegister(cmd.a, cmd.b)
                }
                _ => continue,
            };
            notifications.extend(self.actuate(cmd.rtu, ts_us, action));
        }
        ExecResult {
            reply: outcome.reply,
            notifications,
        }
    }

    fn next_nseq(&mut self, target: u32) -> u64 {
        let counter = self.nseq.entry(target).or_insert(0);
        *counter += 1;
        *counter
    }

    fn notify(&mut self, target: u32, payload: Vec<u8>) -> Notification {
        Notification {
            target: ClientId(target),
            nseq: self.next_nseq(target),
            payload,
        }
    }

    /// Number of updates applied for an RTU (0 if unknown).
    pub fn updates_applied(&self, rtu: u32) -> u64 {
        self.rtus.get(&rtu).map(|r| r.updates_applied).unwrap_or(0)
    }

    /// Current breaker state, if known.
    pub fn breaker(&self, rtu: u32, breaker: u8) -> Option<bool> {
        self.rtus.get(&rtu)?.breakers.get(&breaker).copied()
    }

    /// Current register value, if known.
    pub fn register(&self, rtu: u32, addr: u16) -> Option<u16> {
        self.rtus.get(&rtu)?.registers.get(&addr).copied()
    }

    fn encode_rtu_state(&self, rtu: u32) -> Vec<u8> {
        let mut w = WireWriter::new();
        match self.rtus.get(&rtu) {
            Some(state) => {
                w.u8(1).u32(rtu).u64(state.last_update_us);
                w.u16(state.registers.len() as u16);
                for (a, v) in &state.registers {
                    w.u16(*a).u16(*v);
                }
                w.u8(state.breakers.len() as u8);
                for (b, on) in &state.breakers {
                    w.u8(*b).bool(*on);
                }
            }
            None => {
                w.u8(0).u32(rtu);
            }
        }
        w.finish().to_vec()
    }
}

impl Application for ScadaMaster {
    fn classify(&self, op: &[u8]) -> Option<&'static str> {
        if op.first().is_some_and(|&b| ShardMsg::is_shard_op(b)) {
            return Some(match op[0] {
                op_tag::XPREPARE => "xshard.prepare",
                op_tag::XCOMMIT => "xshard.commit",
                _ => "xshard.abort",
            });
        }
        Some(match ScadaOp::decode(op) {
            Ok(ScadaOp::DeviceUpdate { .. }) => "scada.device_update",
            Ok(ScadaOp::Command { .. }) => "scada.command",
            Ok(ScadaOp::ReadState { .. }) => "scada.read_state",
            Err(_) => "scada.bad_op",
        })
    }

    fn execute(&mut self, op: &[u8]) -> ExecResult {
        if op.first().is_some_and(|&b| ShardMsg::is_shard_op(b)) {
            return self.execute_xshard(op);
        }
        let Ok(op) = ScadaOp::decode(op) else {
            return ExecResult::reply(b"err:decode".to_vec());
        };
        match op {
            ScadaOp::DeviceUpdate {
                rtu,
                ts_us,
                registers,
                breakers,
            } => {
                let mut breaker_events: Vec<(u8, bool)> = Vec::new();
                {
                    let state = self.rtus.entry(rtu).or_default();
                    for (a, v) in registers {
                        state.registers.insert(a, v);
                    }
                    for (b, on) in breakers {
                        let old = state.breakers.insert(b, on);
                        if old.is_some() && old != Some(on) {
                            breaker_events.push((b, on));
                        }
                    }
                    state.last_update_us = ts_us;
                    state.updates_applied += 1;
                }
                // Unexpected breaker transitions are alarms pushed to HMIs.
                let mut notifications = Vec::new();
                for (b, on) in breaker_events {
                    self.events += 1;
                    let mut w = WireWriter::new();
                    w.u8(1).u32(rtu).u8(b).bool(on);
                    let payload = w.finish().to_vec();
                    for hmi in self.directory.hmis.clone() {
                        notifications.push(self.notify(hmi, payload.clone()));
                    }
                }
                let mut w = WireWriter::new();
                w.raw(b"ok").u64(ts_us);
                ExecResult {
                    reply: w.finish().to_vec(),
                    notifications,
                }
            }
            ScadaOp::Command { rtu, ts_us, action } => {
                // Apply optimistically to the model (the authoritative state
                // arrives with the next device update) and forward the
                // command to the RTU's proxy.
                ExecResult {
                    reply: b"ok:cmd".to_vec(),
                    notifications: self.actuate(rtu, ts_us, action),
                }
            }
            ScadaOp::ReadState { rtu } => ExecResult::reply(self.encode_rtu_state(rtu)),
        }
    }

    fn snapshot(&self) -> Vec<u8> {
        let mut w = WireWriter::new();
        w.u32(self.rtus.len() as u32);
        for (rtu, state) in &self.rtus {
            w.u32(*rtu)
                .u64(state.last_update_us)
                .u64(state.updates_applied);
            w.u16(state.registers.len() as u16);
            for (a, v) in &state.registers {
                w.u16(*a).u16(*v);
            }
            w.u8(state.breakers.len() as u8);
            for (b, on) in &state.breakers {
                w.u8(*b).bool(*on);
            }
        }
        w.u32(self.nseq.len() as u32);
        for (t, s) in &self.nseq {
            w.u32(*t).u64(*s);
        }
        w.u64(self.events);
        // Sharded deployments append the 2PC participant state; legacy
        // single-group snapshots simply end here.
        if let Some(ctx) = &self.xshard {
            w.u8(1);
            ctx.participant.write_into(&mut w);
        }
        w.finish().to_vec()
    }

    fn restore(&mut self, snapshot: &[u8]) {
        let mut r = WireReader::new(snapshot);
        let mut rtus = BTreeMap::new();
        let n = r.u32().unwrap_or(0);
        for _ in 0..n {
            let (Ok(rtu), Ok(last), Ok(applied)) = (r.u32(), r.u64(), r.u64()) else {
                return;
            };
            let mut state = RtuState {
                last_update_us: last,
                updates_applied: applied,
                ..Default::default()
            };
            let Ok(nr) = r.u16() else { return };
            for _ in 0..nr {
                let (Ok(a), Ok(v)) = (r.u16(), r.u16()) else {
                    return;
                };
                state.registers.insert(a, v);
            }
            let Ok(nb) = r.u8() else { return };
            for _ in 0..nb {
                let (Ok(b), Ok(on)) = (r.u8(), r.bool()) else {
                    return;
                };
                state.breakers.insert(b, on);
            }
            rtus.insert(rtu, state);
        }
        let mut nseq = BTreeMap::new();
        let m = r.u32().unwrap_or(0);
        for _ in 0..m {
            let (Ok(t), Ok(s)) = (r.u32(), r.u64()) else {
                return;
            };
            nseq.insert(t, s);
        }
        self.rtus = rtus;
        self.nseq = nseq;
        self.events = r.u64().unwrap_or(0);
        if let Some(ctx) = self.xshard.as_mut() {
            if r.u8() == Ok(1) {
                if let Ok(participant) = XParticipant::read(&mut r) {
                    ctx.participant = participant;
                }
            }
        }
    }

    fn digest(&self) -> Digest {
        spire_crypto::digest(&self.snapshot())
    }
}

/// Payload kinds pushed by the master (first byte of notification payloads).
pub mod notify_kind {
    /// Breaker state-change alarm to HMIs.
    pub const BREAKER_EVENT: u8 = 1;
    /// Supervisory command to an RTU proxy.
    pub const COMMAND: u8 = 2;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn directory() -> ScadaDirectory {
        let mut rtu_proxy = BTreeMap::new();
        rtu_proxy.insert(1, 100);
        ScadaDirectory {
            rtu_proxy,
            hmis: vec![200],
        }
    }

    fn update_op(rtu: u32, ts: u64, breaker_on: bool) -> Vec<u8> {
        ScadaOp::DeviceUpdate {
            rtu,
            ts_us: ts,
            registers: vec![(0, 42)],
            breakers: vec![(0, breaker_on)],
        }
        .encode()
        .to_vec()
    }

    #[test]
    fn updates_apply_and_read_back() {
        let mut master = ScadaMaster::new(directory());
        let out = master.execute(&update_op(1, 10, true));
        assert!(out.reply.starts_with(b"ok"));
        assert!(out.notifications.is_empty(), "first state is not an event");
        assert_eq!(master.register(1, 0), Some(42));
        assert_eq!(master.breaker(1, 0), Some(true));
        assert_eq!(master.updates_applied(1), 1);
    }

    #[test]
    fn breaker_transition_raises_hmi_event() {
        let mut master = ScadaMaster::new(directory());
        master.execute(&update_op(1, 10, true));
        let out = master.execute(&update_op(1, 20, false));
        assert_eq!(out.notifications.len(), 1);
        assert_eq!(out.notifications[0].target, ClientId(200));
        assert_eq!(out.notifications[0].payload[0], notify_kind::BREAKER_EVENT);
        // Repeating the same state is not an event.
        let out = master.execute(&update_op(1, 30, false));
        assert!(out.notifications.is_empty());
    }

    #[test]
    fn command_notifies_proxy_with_monotone_nseq() {
        let mut master = ScadaMaster::new(directory());
        let cmd = |ts| {
            ScadaOp::Command {
                rtu: 1,
                ts_us: ts,
                action: CommandAction::OpenBreaker(0),
            }
            .encode()
            .to_vec()
        };
        let out1 = master.execute(&cmd(5));
        let out2 = master.execute(&cmd(6));
        assert_eq!(out1.notifications[0].target, ClientId(100));
        assert_eq!(out1.notifications[0].nseq, 1);
        assert_eq!(out2.notifications[0].nseq, 2);
        assert_eq!(out1.notifications[0].payload[0], notify_kind::COMMAND);
        assert_eq!(master.breaker(1, 0), Some(false));
    }

    #[test]
    fn command_to_unknown_rtu_has_no_proxy_notification() {
        let mut master = ScadaMaster::new(directory());
        let out = master.execute(
            &ScadaOp::Command {
                rtu: 99,
                ts_us: 1,
                action: CommandAction::CloseBreaker(0),
            }
            .encode(),
        );
        assert!(out.notifications.is_empty());
    }

    #[test]
    fn snapshot_restore_roundtrip() {
        let mut master = ScadaMaster::new(directory());
        master.execute(&update_op(1, 10, true));
        master.execute(
            &ScadaOp::Command {
                rtu: 1,
                ts_us: 11,
                action: CommandAction::SetRegister(5, 123),
            }
            .encode(),
        );
        let snap = master.snapshot();
        let mut other = ScadaMaster::new(directory());
        other.restore(&snap);
        assert_eq!(other.digest(), master.digest());
        assert_eq!(other.register(1, 5), Some(123));
        // nseq continuity: the restored master continues the counter.
        let out = other.execute(
            &ScadaOp::Command {
                rtu: 1,
                ts_us: 12,
                action: CommandAction::OpenBreaker(0),
            }
            .encode(),
        );
        assert_eq!(out.notifications[0].nseq, 2);
    }

    #[test]
    fn read_state_reply_roundtrips() {
        let mut master = ScadaMaster::new(directory());
        master.execute(&update_op(1, 10, true));
        let out = master.execute(&ScadaOp::ReadState { rtu: 1 }.encode());
        assert_eq!(out.reply[0], 1); // known
        let out = master.execute(&ScadaOp::ReadState { rtu: 9 }.encode());
        assert_eq!(out.reply[0], 0); // unknown
    }

    #[test]
    fn determinism_across_instances() {
        let ops: Vec<Vec<u8>> = (0..20)
            .map(|i| update_op(1 + (i % 3), i as u64, i % 2 == 0))
            .collect();
        let mut a = ScadaMaster::new(directory());
        let mut b = ScadaMaster::new(directory());
        for op in &ops {
            let ra = a.execute(op);
            let rb = b.execute(op);
            assert_eq!(ra, rb);
        }
        assert_eq!(a.digest(), b.digest());
    }

    #[test]
    fn garbage_op_is_rejected_gracefully() {
        let mut master = ScadaMaster::new(directory());
        let out = master.execute(b"\xff\xfe");
        assert_eq!(out.reply, b"err:decode".to_vec());
    }
}
