//! The SCADA layer of the Spire reproduction: the replicated SCADA master
//! state machine, RTU/PLC field devices with a Modbus-like protocol, the
//! proxies that bridge them to the replicated masters, the HMI, and the
//! synthetic power-grid workload.
//!
//! Data flows exactly as in the paper:
//!
//! ```text
//! RTU --report--> RtuProxy --signed op--> Prime replicas (ScadaMaster each)
//! HMI --command-> Prime replicas --f+1 matching notifications--> RtuProxy --write--> RTU
//! ```
//!
//! * [`master`] — the deterministic [`spire_prime::Application`] holding
//!   grid state; pushes commands and alarms as replica notifications.
//! * [`device`] — emulated RTUs/PLCs sampling a synthetic process.
//! * [`modbus`] — the proxy <-> device protocol.
//! * [`proxy`] — RTU proxies enforcing `f + 1` agreement before actuation.
//! * [`hmi`] — operator consoles issuing supervisory commands.
//! * [`historian`] — an archive of f+1-validated grid events.
//! * [`op`] — the ordered operation codec.
//! * [`workload`] — load curves and deployment-wide workload parameters.

pub mod device;
pub mod historian;
pub mod hmi;
pub mod master;
pub mod modbus;
pub mod op;
pub mod proxy;
pub mod workload;

pub use device::Rtu;
pub use historian::{Archive, BreakerEvent, Historian};
pub use hmi::Hmi;
pub use master::{ScadaDirectory, ScadaMaster, XShardContext};
pub use modbus::ModbusFrame;
pub use op::{CommandAction, ScadaOp};
pub use proxy::RtuProxy;
pub use workload::{ProcessModel, WorkloadConfig};
