//! Synthetic power-grid workload: load curves for analog points and
//! scripted grid events, substituting for the paper's physical test
//! harness and 30-hour field traffic.

use spire_sim::Span;

/// The synthetic physical process behind a device's analog points.
#[derive(Clone, Copy, Debug)]
pub struct ProcessModel {
    /// Number of analog points (holding registers 0..n).
    pub analog_points: u16,
    /// Number of breakers (coils 0..n).
    pub breakers: u8,
    /// Base value of each analog point.
    pub base: f64,
    /// Amplitude of the diurnal-style sinusoidal component.
    pub amplitude: f64,
    /// Period of the sinusoid in seconds (scaled-down diurnal cycle).
    pub period_s: f64,
    /// Peak magnitude of per-sample noise.
    pub noise: f64,
}

impl Default for ProcessModel {
    fn default() -> Self {
        ProcessModel {
            analog_points: 4,
            breakers: 2,
            base: 500.0,
            amplitude: 200.0,
            period_s: 600.0,
            noise: 10.0,
        }
    }
}

impl ProcessModel {
    /// Samples point `addr` of device `rtu` at time `t` seconds with a
    /// noise draw in `[-1, 1]`.
    pub fn sample(&self, rtu: u32, addr: u16, t: f64, noise: f64) -> u16 {
        let phase = (rtu as f64) * 0.7 + (addr as f64) * 1.3;
        let value = self.base
            + self.amplitude * (2.0 * std::f64::consts::PI * t / self.period_s + phase).sin()
            + self.noise * noise;
        value.clamp(0.0, u16::MAX as f64) as u16
    }
}

/// Workload parameters for a whole deployment.
#[derive(Clone, Copy, Debug)]
pub struct WorkloadConfig {
    /// Number of emulated RTUs (one proxy each).
    pub rtus: u32,
    /// Interval between each RTU's status reports.
    pub update_interval: Span,
    /// Number of HMIs.
    pub hmis: u32,
    /// Interval between HMI supervisory commands (0 = none).
    pub command_interval: Span,
    /// Interval between HMI ordered state reads (0 = none).
    pub poll_interval: Span,
    /// The physical process behind each device.
    pub process: ProcessModel,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            rtus: 10,
            update_interval: Span::secs(1),
            hmis: 1,
            command_interval: Span::secs(10),
            poll_interval: Span::secs(2),
            process: ProcessModel::default(),
        }
    }
}

impl WorkloadConfig {
    /// Total offered update load in ops per second.
    pub fn updates_per_second(&self) -> f64 {
        if self.update_interval.0 == 0 {
            return 0.0;
        }
        self.rtus as f64 * 1_000_000.0 / self.update_interval.0 as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_is_deterministic_and_bounded() {
        let m = ProcessModel::default();
        let a = m.sample(1, 0, 12.5, 0.3);
        let b = m.sample(1, 0, 12.5, 0.3);
        assert_eq!(a, b);
        for t in 0..100 {
            let v = m.sample(2, 1, t as f64, -1.0);
            assert!(v as f64 <= m.base + m.amplitude + m.noise + 1.0);
        }
    }

    #[test]
    fn distinct_rtus_have_distinct_phases() {
        let m = ProcessModel::default();
        let a = m.sample(0, 0, 100.0, 0.0);
        let b = m.sample(5, 0, 100.0, 0.0);
        assert_ne!(a, b);
    }

    #[test]
    fn updates_per_second() {
        let cfg = WorkloadConfig {
            rtus: 10,
            update_interval: Span::millis(100),
            ..Default::default()
        };
        assert!((cfg.updates_per_second() - 100.0).abs() < 1e-9);
    }
}
