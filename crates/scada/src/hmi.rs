//! The human-machine interface: issues supervisory commands to the
//! replicated masters and receives alarms (breaker events).

use crate::master::notify_kind;
use crate::op::{CommandAction, ScadaOp};
use bytes::Bytes;
use spire_crypto::keys::Signer;
use spire_prime::client::ClientRouting;
use spire_prime::{ClientId, ClientOp, PrimeConfig, PrimeMsg};
use spire_sim::{span_key, Context, Process, ProcessId, Span, SpanPhase, Time};
use std::collections::BTreeMap;

const TIMER_COMMAND: u64 = 1;
const TIMER_POLL: u64 = 2;

/// An HMI operator console process.
pub struct Hmi {
    cfg: PrimeConfig,
    client_id: ClientId,
    signer: Signer,
    routing: ClientRouting,
    /// RTUs the operator cycles commands through.
    targets: Vec<u32>,
    command_interval: Span,
    max_commands: u64,
    poll_interval: Span,

    cseq: u64,
    issued: u64,
    next_target: usize,
    breaker_open: bool,
    sent_at: BTreeMap<u64, Time>,
    poll_cseqs: std::collections::BTreeSet<u64>,
    replies: crate::proxy::QuorumTracker,
    alarms: crate::proxy::QuorumTracker,
}

impl Hmi {
    /// Creates an HMI issuing a command every `command_interval` to the
    /// given RTUs, alternating open/close (0 `max_commands` = unlimited).
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        cfg: PrimeConfig,
        client_id: ClientId,
        signer: Signer,
        routing: ClientRouting,
        targets: Vec<u32>,
        command_interval: Span,
        max_commands: u64,
    ) -> Hmi {
        Hmi {
            cfg,
            client_id,
            signer,
            routing,
            targets,
            command_interval,
            max_commands,
            poll_interval: Span::ZERO,
            cseq: 0,
            issued: 0,
            next_target: 0,
            breaker_open: true,
            sent_at: BTreeMap::new(),
            poll_cseqs: Default::default(),
            replies: Default::default(),
            alarms: Default::default(),
        }
    }

    /// Enables periodic ordered state reads (the HMI's poll loop).
    pub fn with_polling(mut self, interval: Span) -> Hmi {
        self.poll_interval = interval;
        self
    }

    fn issue_poll(&mut self, ctx: &mut Context<'_>) {
        if self.targets.is_empty() {
            return;
        }
        let rtu = self.targets[self.next_target % self.targets.len()];
        let op = ScadaOp::ReadState { rtu };
        self.cseq += 1;
        let client_op = ClientOp::signed(self.client_id, self.cseq, op.encode(), &self.signer);
        let msg = PrimeMsg::Op(client_op).encode();
        self.sent_at.insert(self.cseq, ctx.now());
        self.poll_cseqs.insert(self.cseq);
        self.send_to_replicas(ctx, msg);
        ctx.count("hmi.polls_sent", 1);
    }

    fn send_to_replicas(&mut self, ctx: &mut Context<'_>, msg: bytes::Bytes) {
        match &self.routing {
            ClientRouting::Direct(replicas) => {
                for pid in replicas.clone() {
                    ctx.send(pid, msg.clone());
                }
            }
            ClientRouting::Spines { port, addrs, mode } => {
                let (port, mode) = (*port, *mode);
                for addr in addrs.clone() {
                    port.send(ctx, addr, mode, true, msg.clone());
                }
            }
        }
    }

    fn issue_command(&mut self, ctx: &mut Context<'_>) {
        if self.targets.is_empty() {
            return;
        }
        let rtu = self.targets[self.next_target % self.targets.len()];
        self.next_target += 1;
        let action = if self.breaker_open {
            CommandAction::OpenBreaker(0)
        } else {
            CommandAction::CloseBreaker(0)
        };
        self.breaker_open = !self.breaker_open;
        let op = ScadaOp::Command {
            rtu,
            ts_us: ctx.now().0,
            action,
        };
        self.cseq += 1;
        self.issued += 1;
        let client_op = ClientOp::signed(self.client_id, self.cseq, op.encode(), &self.signer);
        let msg = PrimeMsg::Op(client_op).encode();
        self.sent_at.insert(self.cseq, ctx.now());
        ctx.span_mark(span_key(self.client_id.0, self.cseq), SpanPhase::Submit);
        self.send_to_replicas(ctx, msg);
        ctx.count("hmi.commands_sent", 1);
    }
}

impl Process for Hmi {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        if let ClientRouting::Spines { port, .. } = &self.routing {
            port.attach(ctx);
        }
        if self.command_interval.0 > 0 {
            ctx.set_timer(self.command_interval, TIMER_COMMAND);
        }
        if self.poll_interval.0 > 0 {
            ctx.set_timer(self.poll_interval, TIMER_POLL);
        }
    }

    fn on_message(&mut self, ctx: &mut Context<'_>, _from: ProcessId, bytes: &Bytes) {
        let payload = match &self.routing {
            ClientRouting::Direct(_) => bytes.clone(),
            ClientRouting::Spines { .. } => match spire_spines::SpinesPort::decode_deliver(bytes) {
                Some((_, payload)) => payload,
                None => return,
            },
        };
        let Ok(msg) = spire_prime::decode_enclosed(&payload) else {
            return;
        };
        let quorum = (self.cfg.f + 1) as usize;
        match msg {
            PrimeMsg::Reply {
                replica,
                client,
                cseq,
                result,
                ..
            } if client == self.client_id
                && self
                    .replies
                    .vote(cseq, replica.0, &result, quorum)
                    .is_some() =>
            {
                let is_poll = self.poll_cseqs.remove(&cseq);
                if let Some(sent) = self.sent_at.remove(&cseq) {
                    let latency = ctx.now().since(sent).as_millis_f64();
                    let name = if is_poll {
                        "hmi.poll_latency_ms"
                    } else {
                        "hmi.command_ack_ms"
                    };
                    ctx.record(name, latency);
                }
                if is_poll {
                    ctx.count("hmi.polls_acked", 1);
                } else {
                    ctx.span_mark(span_key(self.client_id.0, cseq), SpanPhase::Confirm);
                    ctx.count("hmi.commands_acked", 1);
                }
            }
            PrimeMsg::Notify {
                replica,
                client,
                nseq,
                payload,
                ..
            } if client == self.client_id => {
                if let Some(agreed) = self.alarms.vote(nseq, replica.0, &payload, quorum) {
                    if agreed.first() == Some(&notify_kind::BREAKER_EVENT) {
                        ctx.count("hmi.alarms", 1);
                    }
                }
            }
            _ => {}
        }
        let conflicts = self.replies.take_conflicts() + self.alarms.take_conflicts();
        if conflicts > 0 {
            ctx.count("scada.conflicting_accept", conflicts);
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_>, tag: u64) {
        match tag {
            TIMER_COMMAND if self.max_commands == 0 || self.issued < self.max_commands => {
                self.issue_command(ctx);
                ctx.set_timer(self.command_interval, TIMER_COMMAND);
            }
            TIMER_POLL => {
                self.issue_poll(ctx);
                ctx.set_timer(self.poll_interval, TIMER_POLL);
            }
            _ => {}
        }
    }
}

impl std::fmt::Debug for Hmi {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Hmi")
            .field("client", &self.client_id)
            .field("issued", &self.issued)
            .finish()
    }
}
