//! A Modbus-like field-device protocol.
//!
//! Spire's proxies speak Modbus/DNP3 to PLCs and RTUs; this module provides
//! the equivalent device protocol for the emulated field devices: holding
//! registers (analog measurements, setpoints) and coils (breakers).

use bytes::Bytes;
use spire_sim::{WireError, WireReader, WireWriter};

/// A device-protocol frame between a proxy and a field device.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ModbusFrame {
    /// Read `count` holding registers starting at `addr`.
    ReadRegisters {
        /// Correlates request and response.
        txn: u16,
        /// First register.
        addr: u16,
        /// Number of registers.
        count: u16,
    },
    /// Response carrying register values.
    ReadResponse {
        /// Echoed transaction id.
        txn: u16,
        /// First register.
        addr: u16,
        /// Values.
        values: Vec<u16>,
    },
    /// Write a single coil (breaker): `true` = closed.
    WriteCoil {
        /// Transaction id.
        txn: u16,
        /// Coil number.
        coil: u8,
        /// Desired state.
        on: bool,
    },
    /// Write a single holding register (setpoint).
    WriteRegister {
        /// Transaction id.
        txn: u16,
        /// Register address.
        addr: u16,
        /// Value.
        value: u16,
    },
    /// Acknowledgement of a write.
    WriteAck {
        /// Echoed transaction id.
        txn: u16,
    },
    /// Unsolicited periodic status report from the device.
    Report {
        /// Device-local timestamp (simulation microseconds).
        ts_us: u64,
        /// Register values `(addr, value)`.
        registers: Vec<(u16, u16)>,
        /// Coil states `(coil, closed)`.
        coils: Vec<(u8, bool)>,
    },
}

impl ModbusFrame {
    /// Encodes the frame.
    pub fn encode(&self) -> Bytes {
        let mut w = WireWriter::with_capacity(32);
        match self {
            ModbusFrame::ReadRegisters { txn, addr, count } => {
                w.u8(3).u16(*txn).u16(*addr).u16(*count);
            }
            ModbusFrame::ReadResponse { txn, addr, values } => {
                w.u8(4).u16(*txn).u16(*addr).u16(values.len() as u16);
                for v in values {
                    w.u16(*v);
                }
            }
            ModbusFrame::WriteCoil { txn, coil, on } => {
                w.u8(5).u16(*txn).u8(*coil).bool(*on);
            }
            ModbusFrame::WriteRegister { txn, addr, value } => {
                w.u8(6).u16(*txn).u16(*addr).u16(*value);
            }
            ModbusFrame::WriteAck { txn } => {
                w.u8(7).u16(*txn);
            }
            ModbusFrame::Report {
                ts_us,
                registers,
                coils,
            } => {
                w.u8(8).u64(*ts_us).u16(registers.len() as u16);
                for (a, v) in registers {
                    w.u16(*a).u16(*v);
                }
                w.u8(coils.len() as u8);
                for (c, on) in coils {
                    w.u8(*c).bool(*on);
                }
            }
        }
        w.finish()
    }

    /// Decodes a frame.
    pub fn decode(bytes: &[u8]) -> Result<ModbusFrame, WireError> {
        let mut r = WireReader::new(bytes);
        let frame = match r.u8()? {
            3 => ModbusFrame::ReadRegisters {
                txn: r.u16()?,
                addr: r.u16()?,
                count: r.u16()?,
            },
            4 => {
                let txn = r.u16()?;
                let addr = r.u16()?;
                let n = r.u16()? as usize;
                let mut values = Vec::with_capacity(n.min(4096));
                for _ in 0..n {
                    values.push(r.u16()?);
                }
                ModbusFrame::ReadResponse { txn, addr, values }
            }
            5 => ModbusFrame::WriteCoil {
                txn: r.u16()?,
                coil: r.u8()?,
                on: r.bool()?,
            },
            6 => ModbusFrame::WriteRegister {
                txn: r.u16()?,
                addr: r.u16()?,
                value: r.u16()?,
            },
            7 => ModbusFrame::WriteAck { txn: r.u16()? },
            8 => {
                let ts_us = r.u64()?;
                let n = r.u16()? as usize;
                let mut registers = Vec::with_capacity(n.min(4096));
                for _ in 0..n {
                    registers.push((r.u16()?, r.u16()?));
                }
                let m = r.u8()? as usize;
                let mut coils = Vec::with_capacity(m);
                for _ in 0..m {
                    coils.push((r.u8()?, r.bool()?));
                }
                ModbusFrame::Report {
                    ts_us,
                    registers,
                    coils,
                }
            }
            other => return Err(WireError::BadTag(other)),
        };
        r.expect_end()?;
        Ok(frame)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(f: ModbusFrame) {
        assert_eq!(ModbusFrame::decode(&f.encode()).unwrap(), f);
    }

    #[test]
    fn roundtrip_all() {
        roundtrip(ModbusFrame::ReadRegisters {
            txn: 1,
            addr: 10,
            count: 4,
        });
        roundtrip(ModbusFrame::ReadResponse {
            txn: 1,
            addr: 10,
            values: vec![5, 6, 7],
        });
        roundtrip(ModbusFrame::WriteCoil {
            txn: 2,
            coil: 3,
            on: true,
        });
        roundtrip(ModbusFrame::WriteRegister {
            txn: 3,
            addr: 20,
            value: 999,
        });
        roundtrip(ModbusFrame::WriteAck { txn: 3 });
        roundtrip(ModbusFrame::Report {
            ts_us: 123456,
            registers: vec![(0, 100), (1, 200)],
            coils: vec![(0, true), (1, false)],
        });
    }

    #[test]
    fn rejects_garbage() {
        assert!(ModbusFrame::decode(&[0xaa, 0xbb]).is_err());
        assert!(ModbusFrame::decode(&[]).is_err());
    }
}
