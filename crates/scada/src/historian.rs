//! The SCADA historian: a passive observer that archives confirmed device
//! updates and alarms, as real control rooms run alongside the HMI.
//!
//! The historian is a Prime client like any other: it receives the same
//! `f + 1`-validated notifications, so a compromised replica cannot plant
//! false history. It answers range queries over the archived samples —
//! used by tests and by operators reconstructing an incident timeline.

use crate::master::notify_kind;
use bytes::Bytes;
use spire_prime::{ClientId, PrimeConfig, PrimeMsg};
use spire_sim::{Context, Process, ProcessId, Time, WireReader};
use std::sync::{Arc, Mutex};

/// One archived breaker event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BreakerEvent {
    /// When the historian archived it (simulation time).
    pub archived_at: Time,
    /// The RTU reporting the transition.
    pub rtu: u32,
    /// The breaker.
    pub breaker: u8,
    /// New state (true = closed).
    pub closed: bool,
}

/// Shared, queryable archive.
#[derive(Clone, Debug, Default)]
pub struct Archive {
    inner: Arc<Mutex<Vec<BreakerEvent>>>,
}

impl Archive {
    /// Creates an empty archive.
    pub fn new() -> Archive {
        Archive::default()
    }

    fn push(&self, event: BreakerEvent) {
        self.inner.lock().expect("poisoned").push(event);
    }

    /// Number of archived events.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("poisoned").len()
    }

    /// True if nothing was archived.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().expect("poisoned").is_empty()
    }

    /// Events archived within `[from, until)`.
    pub fn query_range(&self, from: Time, until: Time) -> Vec<BreakerEvent> {
        self.inner
            .lock()
            .expect("poisoned")
            .iter()
            .filter(|e| e.archived_at >= from && e.archived_at < until)
            .copied()
            .collect()
    }

    /// Events for one breaker, in order.
    pub fn breaker_history(&self, rtu: u32, breaker: u8) -> Vec<BreakerEvent> {
        self.inner
            .lock()
            .expect("poisoned")
            .iter()
            .filter(|e| e.rtu == rtu && e.breaker == breaker)
            .copied()
            .collect()
    }
}

/// The historian process.
pub struct Historian {
    cfg: PrimeConfig,
    client_id: ClientId,
    archive: Archive,
    votes: crate::proxy::QuorumTracker,
}

impl Historian {
    /// Creates a historian with the given Prime client identity. Register
    /// its client id in the [`crate::master::ScadaDirectory`] `hmis` list so
    /// the masters push it events.
    pub fn new(cfg: PrimeConfig, client_id: ClientId, archive: Archive) -> Historian {
        Historian {
            cfg,
            client_id,
            archive,
            votes: Default::default(),
        }
    }
}

impl Process for Historian {
    fn on_message(&mut self, ctx: &mut Context<'_>, _from: ProcessId, bytes: &Bytes) {
        // Accept both direct and overlay-wrapped deliveries.
        let payload = match spire_spines::SpinesPort::decode_deliver(bytes) {
            Some((_, payload)) => payload,
            None => bytes.clone(),
        };
        let Ok(PrimeMsg::Notify {
            replica,
            client,
            nseq,
            payload,
            ..
        }) = spire_prime::decode_enclosed(&payload)
        else {
            return;
        };
        if client != self.client_id {
            return;
        }
        let quorum = (self.cfg.f + 1) as usize;
        let fired = self.votes.vote(nseq, replica.0, &payload, quorum);
        let conflicts = self.votes.take_conflicts();
        if conflicts > 0 {
            ctx.count("scada.conflicting_accept", conflicts);
        }
        let Some(agreed) = fired else {
            return;
        };
        let mut r = WireReader::new(&agreed);
        let Ok(kind) = r.u8() else { return };
        if kind != notify_kind::BREAKER_EVENT {
            return;
        }
        let (Ok(rtu), Ok(breaker), Ok(closed)) = (r.u32(), r.u8(), r.bool()) else {
            return;
        };
        self.archive.push(BreakerEvent {
            archived_at: ctx.now(),
            rtu,
            breaker,
            closed,
        });
        ctx.count("historian.events", 1);
    }
}

impl std::fmt::Debug for Historian {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Historian(events={})", self.archive.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn archive_queries() {
        let archive = Archive::new();
        for (t, rtu, breaker, closed) in [
            (10u64, 1u32, 0u8, false),
            (20, 1, 0, true),
            (30, 2, 1, false),
        ] {
            archive.push(BreakerEvent {
                archived_at: Time(t),
                rtu,
                breaker,
                closed,
            });
        }
        assert_eq!(archive.len(), 3);
        assert_eq!(archive.query_range(Time(10), Time(30)).len(), 2);
        assert_eq!(archive.query_range(Time(0), Time(5)).len(), 0);
        let history = archive.breaker_history(1, 0);
        assert_eq!(history.len(), 2);
        assert!(!history[0].closed && history[1].closed);
        assert!(archive.breaker_history(9, 9).is_empty());
    }
}
