//! Emulated field devices (RTUs/PLCs).
//!
//! Each device holds a register map and breaker coils, periodically samples
//! its (synthetic) physical process and reports to its proxy, and executes
//! write commands with a small actuation delay — substituting for the
//! paper's physical PLCs driven over Modbus.

use crate::modbus::ModbusFrame;
use crate::workload::ProcessModel;
use bytes::Bytes;
use spire_sim::{Context, Process, ProcessId, Span};
use std::collections::BTreeMap;

const TIMER_REPORT: u64 = 1;

/// An emulated RTU/PLC.
pub struct Rtu {
    /// This device's id.
    pub rtu_id: u32,
    proxy: Option<ProcessId>,
    report_interval: Span,
    model: ProcessModel,
    registers: BTreeMap<u16, u16>,
    breakers: BTreeMap<u8, bool>,
    label: String,
}

impl Rtu {
    /// Creates a device that reports to `proxy` every `report_interval`.
    pub fn new(rtu_id: u32, proxy: ProcessId, report_interval: Span, model: ProcessModel) -> Rtu {
        let mut breakers = BTreeMap::new();
        for b in 0..model.breakers {
            breakers.insert(b, true); // breakers start closed
        }
        Rtu {
            rtu_id,
            proxy: Some(proxy),
            report_interval,
            model,
            registers: BTreeMap::new(),
            breakers,
            label: format!("rtu{rtu_id}"),
        }
    }

    /// Current breaker state (tests / invariant checks).
    pub fn breaker(&self, coil: u8) -> Option<bool> {
        self.breakers.get(&coil).copied()
    }

    fn sample_and_report(&mut self, ctx: &mut Context<'_>) {
        // Sample the synthetic process: deterministic curve + seeded noise.
        let t = ctx.now().as_secs_f64();
        for addr in 0..self.model.analog_points {
            let noise: f64 = {
                use rand::Rng;
                ctx.rng().gen_range(-1.0..1.0)
            };
            let value = self.model.sample(self.rtu_id, addr, t, noise);
            self.registers.insert(addr, value);
        }
        let report = ModbusFrame::Report {
            ts_us: ctx.now().0,
            registers: self.registers.iter().map(|(a, v)| (*a, *v)).collect(),
            coils: self.breakers.iter().map(|(b, on)| (*b, *on)).collect(),
        };
        if let Some(proxy) = self.proxy {
            ctx.send(proxy, report.encode());
            ctx.count(&format!("{}.reports", self.label), 1);
        }
    }
}

impl Process for Rtu {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        ctx.set_timer(self.report_interval, TIMER_REPORT);
    }

    fn on_message(&mut self, ctx: &mut Context<'_>, from: ProcessId, bytes: &Bytes) {
        let Ok(frame) = ModbusFrame::decode(bytes) else {
            ctx.count(&format!("{}.bad_frame", self.label), 1);
            return;
        };
        match frame {
            ModbusFrame::WriteCoil { txn, coil, on } => {
                self.breakers.insert(coil, on);
                ctx.count(&format!("{}.coil_writes", self.label), 1);
                ctx.send(from, ModbusFrame::WriteAck { txn }.encode());
            }
            ModbusFrame::WriteRegister { txn, addr, value } => {
                self.registers.insert(addr, value);
                ctx.send(from, ModbusFrame::WriteAck { txn }.encode());
            }
            ModbusFrame::ReadRegisters { txn, addr, count } => {
                let values: Vec<u16> = (addr..addr.saturating_add(count))
                    .map(|a| self.registers.get(&a).copied().unwrap_or(0))
                    .collect();
                ctx.send(
                    from,
                    ModbusFrame::ReadResponse { txn, addr, values }.encode(),
                );
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_>, tag: u64) {
        if tag == TIMER_REPORT {
            self.sample_and_report(ctx);
            ctx.set_timer(self.report_interval, TIMER_REPORT);
        }
    }
}

impl std::fmt::Debug for Rtu {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Rtu").field("id", &self.rtu_id).finish()
    }
}
