//! Operations of the replicated SCADA master state machine.

use bytes::Bytes;
use spire_sim::{WireError, WireReader, WireWriter};

/// A supervisory control action.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CommandAction {
    /// Open (trip) a breaker.
    OpenBreaker(u8),
    /// Close a breaker.
    CloseBreaker(u8),
    /// Write a setpoint register.
    SetRegister(u16, u16),
}

/// An operation ordered through Prime and executed by every SCADA master.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ScadaOp {
    /// A field-device status update forwarded by an RTU proxy.
    DeviceUpdate {
        /// Reporting RTU.
        rtu: u32,
        /// Device timestamp when the measurement was taken (sim µs).
        ts_us: u64,
        /// Register values.
        registers: Vec<(u16, u16)>,
        /// Breaker states.
        breakers: Vec<(u8, bool)>,
    },
    /// A supervisory command issued by an HMI operator.
    Command {
        /// Target RTU.
        rtu: u32,
        /// HMI timestamp when the command was issued (sim µs).
        ts_us: u64,
        /// The action.
        action: CommandAction,
    },
    /// An ordered read of an RTU's state (returns its current registers).
    ReadState {
        /// Target RTU.
        rtu: u32,
    },
}

impl ScadaOp {
    /// Encodes the op for submission as a Prime client payload.
    pub fn encode(&self) -> Bytes {
        let mut w = WireWriter::with_capacity(32);
        match self {
            ScadaOp::DeviceUpdate {
                rtu,
                ts_us,
                registers,
                breakers,
            } => {
                w.u8(1).u32(*rtu).u64(*ts_us).u16(registers.len() as u16);
                for (a, v) in registers {
                    w.u16(*a).u16(*v);
                }
                w.u8(breakers.len() as u8);
                for (b, on) in breakers {
                    w.u8(*b).bool(*on);
                }
            }
            ScadaOp::Command { rtu, ts_us, action } => {
                w.u8(2).u32(*rtu).u64(*ts_us);
                match action {
                    CommandAction::OpenBreaker(b) => {
                        w.u8(1).u8(*b);
                    }
                    CommandAction::CloseBreaker(b) => {
                        w.u8(2).u8(*b);
                    }
                    CommandAction::SetRegister(a, v) => {
                        w.u8(3).u16(*a).u16(*v);
                    }
                }
            }
            ScadaOp::ReadState { rtu } => {
                w.u8(3).u32(*rtu);
            }
        }
        w.finish()
    }

    /// Decodes an op.
    pub fn decode(bytes: &[u8]) -> Result<ScadaOp, WireError> {
        let mut r = WireReader::new(bytes);
        let op = match r.u8()? {
            1 => {
                let rtu = r.u32()?;
                let ts_us = r.u64()?;
                let n = r.u16()? as usize;
                let mut registers = Vec::with_capacity(n.min(4096));
                for _ in 0..n {
                    registers.push((r.u16()?, r.u16()?));
                }
                let m = r.u8()? as usize;
                let mut breakers = Vec::with_capacity(m);
                for _ in 0..m {
                    breakers.push((r.u8()?, r.bool()?));
                }
                ScadaOp::DeviceUpdate {
                    rtu,
                    ts_us,
                    registers,
                    breakers,
                }
            }
            2 => {
                let rtu = r.u32()?;
                let ts_us = r.u64()?;
                let action = match r.u8()? {
                    1 => CommandAction::OpenBreaker(r.u8()?),
                    2 => CommandAction::CloseBreaker(r.u8()?),
                    3 => CommandAction::SetRegister(r.u16()?, r.u16()?),
                    other => return Err(WireError::BadTag(other)),
                };
                ScadaOp::Command { rtu, ts_us, action }
            }
            3 => ScadaOp::ReadState { rtu: r.u32()? },
            other => return Err(WireError::BadTag(other)),
        };
        r.expect_end()?;
        Ok(op)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(op: ScadaOp) {
        assert_eq!(ScadaOp::decode(&op.encode()).unwrap(), op);
    }

    #[test]
    fn roundtrip_all() {
        roundtrip(ScadaOp::DeviceUpdate {
            rtu: 7,
            ts_us: 99,
            registers: vec![(0, 1), (2, 3)],
            breakers: vec![(0, true)],
        });
        roundtrip(ScadaOp::Command {
            rtu: 7,
            ts_us: 100,
            action: CommandAction::OpenBreaker(2),
        });
        roundtrip(ScadaOp::Command {
            rtu: 7,
            ts_us: 100,
            action: CommandAction::SetRegister(5, 1000),
        });
        roundtrip(ScadaOp::ReadState { rtu: 3 });
    }

    #[test]
    fn rejects_bad_tag() {
        assert!(ScadaOp::decode(&[9]).is_err());
    }
}
