//! The RTU proxy: bridges a field device to the replicated SCADA masters.
//!
//! Upstream, it wraps device reports as signed Prime client operations;
//! downstream, it actuates a supervisory command on the device only after
//! `f + 1` replicas push matching command notifications — so up to `f`
//! compromised masters cannot actuate anything on their own.

use crate::master::notify_kind;
use crate::modbus::ModbusFrame;
use crate::op::ScadaOp;
use bytes::Bytes;
use spire_crypto::keys::Signer;
use spire_prime::client::ClientRouting;
use spire_prime::{ClientId, ClientOp, PrimeConfig, PrimeMsg};
use spire_sim::{span_key, Context, Process, ProcessId, SpanPhase, Time, WireReader};
use std::collections::BTreeMap;

/// Collects per-key votes from replicas and fires once `quorum` of them
/// agree on identical bytes.
///
/// After a key fires, votes keep being tallied: if a *different* value
/// later gathers a full quorum for the same key, two disjoint quorums
/// accepted conflicting values — impossible with at most `f` faults, so
/// it is recorded as a conflict and surfaced to the invariant checker
/// via `take_conflicts`.
#[derive(Clone, Debug, Default)]
pub struct QuorumTracker {
    votes: BTreeMap<u64, BTreeMap<u32, Vec<u8>>>,
    /// key -> hash of the payload that won, once fired.
    fired: BTreeMap<u64, u64>,
    conflicts: u64,
}

/// FNV-1a, enough to distinguish the fired payload without storing it.
fn payload_hash(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl QuorumTracker {
    /// Records a vote; returns the agreed payload the first time `quorum`
    /// matching votes exist for `key`.
    pub fn vote(
        &mut self,
        key: u64,
        replica: u32,
        payload: &[u8],
        quorum: usize,
    ) -> Option<Vec<u8>> {
        let votes = self.votes.entry(key).or_default();
        votes.insert(replica, payload.to_vec());
        let mut tallies: BTreeMap<&[u8], usize> = BTreeMap::new();
        for v in votes.values() {
            *tallies.entry(v.as_slice()).or_insert(0) += 1;
        }
        let winner = tallies
            .into_iter()
            .find(|(_, count)| *count >= quorum)
            .map(|(payload, _)| payload.to_vec());
        if let Some(decided) = self.fired.get(&key).copied() {
            // Already decided: watch for a second, conflicting quorum.
            if let Some(payload) = winner {
                if payload_hash(&payload) != decided {
                    self.conflicts += 1;
                }
                self.votes.remove(&key);
            }
            return None;
        }
        if let Some(payload) = winner {
            self.fired.insert(key, payload_hash(&payload));
            self.votes.remove(&key);
            // Bound memory.
            if self.fired.len() > 100_000 {
                let first = *self.fired.keys().next().unwrap();
                self.fired.remove(&first);
            }
            return Some(payload);
        }
        None
    }

    /// Drains the count of conflicting quorum decisions observed since
    /// the last call (each is a client-visible safety violation).
    pub fn take_conflicts(&mut self) -> u64 {
        std::mem::take(&mut self.conflicts)
    }
}

/// The RTU proxy process.
pub struct RtuProxy {
    cfg: PrimeConfig,
    /// The RTU this proxy serves.
    pub rtu_id: u32,
    client_id: ClientId,
    signer: Signer,
    routing: ClientRouting,
    device: ProcessId,

    cseq: u64,
    sent_at: BTreeMap<u64, Time>,
    replies: QuorumTracker,
    notifies: QuorumTracker,
    txn: u16,
    /// Precomputed per-shard metric keys (sharded deployments only) —
    /// emitted alongside the global `scada.*` series.
    scoped: Option<ScopedKeys>,
}

#[derive(Clone, Debug)]
struct ScopedKeys {
    sent: String,
    confirmed: String,
    latency: String,
}

impl RtuProxy {
    /// Creates a proxy for `rtu_id`, bridging `device` to the replicas.
    pub fn new(
        cfg: PrimeConfig,
        rtu_id: u32,
        client_id: ClientId,
        signer: Signer,
        routing: ClientRouting,
        device: ProcessId,
    ) -> RtuProxy {
        RtuProxy {
            cfg,
            rtu_id,
            client_id,
            signer,
            routing,
            device,
            cseq: 0,
            sent_at: BTreeMap::new(),
            replies: QuorumTracker::default(),
            notifies: QuorumTracker::default(),
            txn: 0,
            scoped: None,
        }
    }

    /// Additionally publishes updates/confirms/latency under
    /// `{scope}.updates_sent` etc. — one scope per shard, so the
    /// aggregate report can break delivery down by group. Keys are
    /// precomputed here to keep the hot path allocation-free.
    pub fn with_metric_scope(mut self, scope: &str) -> RtuProxy {
        self.scoped = Some(ScopedKeys {
            sent: format!("{scope}.updates_sent"),
            confirmed: format!("{scope}.updates_confirmed"),
            latency: format!("{scope}.update_latency_ms"),
        });
        self
    }

    fn submit(&mut self, ctx: &mut Context<'_>, op: ScadaOp) {
        self.cseq += 1;
        let client_op = ClientOp::signed(self.client_id, self.cseq, op.encode(), &self.signer);
        let msg = PrimeMsg::Op(client_op).encode();
        self.sent_at.insert(self.cseq, ctx.now());
        ctx.span_mark(span_key(self.client_id.0, self.cseq), SpanPhase::Submit);
        match &self.routing {
            ClientRouting::Direct(replicas) => {
                for pid in replicas.clone() {
                    ctx.send(pid, msg.clone());
                }
            }
            ClientRouting::Spines { port, addrs, mode } => {
                let (port, mode) = (*port, *mode);
                for addr in addrs.clone() {
                    port.send(ctx, addr, mode, true, msg.clone());
                }
            }
        }
        ctx.count("scada.updates_sent", 1);
        if let Some(scoped) = &self.scoped {
            ctx.count(&scoped.sent, 1);
        }
    }

    fn on_device_frame(&mut self, ctx: &mut Context<'_>, frame: ModbusFrame) {
        match frame {
            ModbusFrame::Report {
                ts_us,
                registers,
                coils,
            } => {
                let op = ScadaOp::DeviceUpdate {
                    rtu: self.rtu_id,
                    ts_us,
                    registers,
                    breakers: coils,
                };
                self.submit(ctx, op);
            }
            ModbusFrame::WriteAck { .. } => {
                ctx.count("scada.device_acks", 1);
            }
            _ => {}
        }
    }

    fn on_prime_msg(&mut self, ctx: &mut Context<'_>, msg: PrimeMsg) {
        let quorum = (self.cfg.f + 1) as usize;
        match msg {
            PrimeMsg::Reply {
                replica,
                client,
                cseq,
                result,
                ..
            } => {
                if client != self.client_id {
                    return;
                }
                if self
                    .replies
                    .vote(cseq, replica.0, &result, quorum)
                    .is_some()
                {
                    if let Some(sent) = self.sent_at.remove(&cseq) {
                        let latency = ctx.now().since(sent).as_millis_f64();
                        ctx.record("scada.update_latency_ms", latency);
                        if let Some(scoped) = &self.scoped {
                            ctx.record(&scoped.latency, latency);
                        }
                    }
                    ctx.span_mark(span_key(self.client_id.0, cseq), SpanPhase::Confirm);
                    ctx.count("scada.updates_confirmed", 1);
                    if let Some(scoped) = &self.scoped {
                        ctx.count(&scoped.confirmed, 1);
                    }
                }
            }
            PrimeMsg::Notify {
                replica,
                client,
                nseq,
                payload,
                ..
            } => {
                if client != self.client_id {
                    return;
                }
                if let Some(agreed) = self.notifies.vote(nseq, replica.0, &payload, quorum) {
                    self.actuate(ctx, &agreed);
                }
            }
            _ => {}
        }
        let conflicts = self.replies.take_conflicts() + self.notifies.take_conflicts();
        if conflicts > 0 {
            ctx.count("scada.conflicting_accept", conflicts);
        }
    }

    /// Applies an f+1-agreed supervisory command to the device.
    fn actuate(&mut self, ctx: &mut Context<'_>, payload: &[u8]) {
        let mut r = WireReader::new(payload);
        let Ok(kind) = r.u8() else { return };
        if kind != notify_kind::COMMAND {
            return;
        }
        let (Ok(_rtu), Ok(ts_us)) = (r.u32(), r.u64()) else {
            return;
        };
        let Ok(action) = r.u8() else { return };
        self.txn = self.txn.wrapping_add(1);
        let frame = match action {
            1 => {
                let Ok(coil) = r.u8() else { return };
                ModbusFrame::WriteCoil {
                    txn: self.txn,
                    coil,
                    on: false,
                }
            }
            2 => {
                let Ok(coil) = r.u8() else { return };
                ModbusFrame::WriteCoil {
                    txn: self.txn,
                    coil,
                    on: true,
                }
            }
            3 => {
                let (Ok(addr), Ok(value)) = (r.u16(), r.u16()) else {
                    return;
                };
                ModbusFrame::WriteRegister {
                    txn: self.txn,
                    addr,
                    value,
                }
            }
            _ => return,
        };
        ctx.send(self.device, frame.encode());
        ctx.count("scada.commands_actuated", 1);
        // End-to-end command latency: HMI issue time -> actuation.
        let latency = (ctx.now().0.saturating_sub(ts_us)) as f64 / 1000.0;
        ctx.record("scada.command_latency_ms", latency);
    }
}

impl Process for RtuProxy {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        if let ClientRouting::Spines { port, .. } = &self.routing {
            port.attach(ctx);
        }
    }

    fn on_message(&mut self, ctx: &mut Context<'_>, from: ProcessId, bytes: &Bytes) {
        if from == self.device {
            if let Ok(frame) = ModbusFrame::decode(bytes) {
                self.on_device_frame(ctx, frame);
            }
            return;
        }
        let payload = match &self.routing {
            ClientRouting::Direct(_) => bytes.clone(),
            ClientRouting::Spines { .. } => match spire_spines::SpinesPort::decode_deliver(bytes) {
                Some((_, payload)) => payload,
                None => return,
            },
        };
        if let Ok(msg) = spire_prime::decode_enclosed(&payload) {
            self.on_prime_msg(ctx, msg);
        }
    }
}

impl std::fmt::Debug for RtuProxy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RtuProxy")
            .field("rtu", &self.rtu_id)
            .field("client", &self.client_id)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quorum_tracker_fires_once_at_quorum() {
        let mut t = QuorumTracker::default();
        assert!(t.vote(1, 0, b"x", 2).is_none());
        assert_eq!(t.vote(1, 1, b"x", 2), Some(b"x".to_vec()));
        assert!(t.vote(1, 2, b"x", 2).is_none(), "must fire only once");
    }

    #[test]
    fn quorum_tracker_requires_matching_payloads() {
        let mut t = QuorumTracker::default();
        assert!(t.vote(1, 0, b"a", 2).is_none());
        assert!(t.vote(1, 1, b"b", 2).is_none());
        assert_eq!(t.vote(1, 2, b"a", 2), Some(b"a".to_vec()));
    }

    #[test]
    fn quorum_tracker_replica_revote_does_not_double_count() {
        let mut t = QuorumTracker::default();
        assert!(t.vote(1, 0, b"a", 2).is_none());
        assert!(t.vote(1, 0, b"a", 2).is_none(), "same replica twice");
    }
}
