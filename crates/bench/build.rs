//! Stamps the bench binaries with the git revision they were built from,
//! so `BENCH_*.json` rows and report JSON can be diffed across PRs.

use std::process::Command;

fn main() {
    let rev = Command::new("git")
        .args(["rev-parse", "--short=12", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string());
    println!("cargo:rustc-env=SPIRE_GIT_REV={rev}");
    // Re-stamp when HEAD moves (best effort: path only exists in a
    // checkout; missing paths are ignored by cargo).
    println!("cargo:rerun-if-changed=../../.git/HEAD");
}
