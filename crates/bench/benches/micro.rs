//! Criterion micro-benchmarks of the building blocks: crypto primitives,
//! protocol codecs, the SCADA state machine and overlay path computation.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use spire_crypto::keys::Signer;
use spire_crypto::{KeyMaterial, NodeId};
use spire_prime::{ClientId, ClientOp, PrimeMsg, ReplicaId};
use spire_scada::{ScadaDirectory, ScadaMaster, ScadaOp};
use spire_spines::{OverlayId, Topology};

fn bench_crypto(c: &mut Criterion) {
    let mut group = c.benchmark_group("crypto");
    let data = vec![0xabu8; 1024];
    group.throughput(Throughput::Bytes(1024));
    group.bench_function("sha256_1k", |b| {
        b.iter(|| spire_crypto::sha2::Sha256::digest(std::hint::black_box(&data)))
    });
    group.bench_function("hmac_sha256_1k", |b| {
        b.iter(|| spire_crypto::hmac::hmac_sha256(b"key", std::hint::black_box(&data)))
    });
    group.finish();

    let material = KeyMaterial::new([1u8; 32]);
    let key = material.signing_key(NodeId(0));
    let msg = b"PO-REQUEST r2 seq 17";
    let sig = key.sign(msg);
    let pk = key.verifying_key();
    let mut group = c.benchmark_group("ed25519");
    group.bench_function("sign", |b| b.iter(|| key.sign(std::hint::black_box(msg))));
    group.bench_function("verify", |b| {
        b.iter(|| pk.verify(std::hint::black_box(msg), &sig))
    });
    group.finish();

    let mut group = c.benchmark_group("merkle");
    let leaves: Vec<Vec<u8>> = (0..256u32).map(|i| i.to_le_bytes().to_vec()).collect();
    group.bench_function("build_256", |b| {
        b.iter(|| spire_crypto::merkle::MerkleTree::build(leaves.iter().map(|l| l.as_slice())))
    });
    group.finish();
}

fn bench_batch_auth(c: &mut Criterion) {
    use spire_crypto::keys::verify64;
    use spire_crypto::{BatchSigner, KeyStore};

    let material = KeyMaterial::new([3u8; 32]);
    let node = NodeId(1000);
    let signer = Signer::new(material.signing_key(node), false);
    let store = KeyStore::for_nodes(&material, 2048);
    let msgs: Vec<Vec<u8>> = (0..16u8).map(|i| vec![i; 96]).collect();
    let digests: Vec<[u8; 32]> = msgs
        .iter()
        .map(|m| spire_crypto::sha2::Sha256::digest(m))
        .collect();

    // The amortization claim: one Merkle flush over 16 vote digests must
    // beat 16 individual ed25519 signatures.
    let mut group = c.benchmark_group("batch_auth");
    group.bench_function("sign_16_individually", |b| {
        b.iter(|| {
            for m in &msgs {
                std::hint::black_box(signer.sign64(std::hint::black_box(m)));
            }
        })
    });
    group.bench_function("batch_sign_16", |b| {
        b.iter(|| {
            let mut batcher = BatchSigner::new();
            for d in &digests {
                batcher.push(std::hint::black_box(*d));
            }
            std::hint::black_box(batcher.flush(&signer))
        })
    });

    // Receiver side: verifying a message through its inclusion proof
    // (path recompute + root signature check) vs a bare signature check.
    let mut batcher = BatchSigner::new();
    for d in &digests {
        batcher.push(*d);
    }
    let batch = batcher.flush(&signer).unwrap();
    let attestation = batch.attestation(7);
    let bare_sig = signer.sign64(&msgs[7]);
    group.bench_function("verify_bare", |b| {
        b.iter(|| {
            verify64(
                &store,
                node,
                std::hint::black_box(&msgs[7]),
                &bare_sig,
                false,
            )
        })
    });
    group.bench_function("verify_with_proof_16", |b| {
        b.iter(|| attestation.verify(&store, node, std::hint::black_box(&digests[7]), false))
    });
    group.finish();
}

fn bench_rsa(c: &mut Criterion) {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use spire_crypto::rsa::RsaPrivateKey;
    // 1024-bit keys approximate what the original system deployed.
    let key = RsaPrivateKey::generate(1024, &mut StdRng::seed_from_u64(1));
    let public = key.public_key();
    let msg = b"PO-REQUEST r2 seq 17";
    let sig = key.sign(msg);
    let mut group = c.benchmark_group("rsa1024");
    group.sample_size(20);
    group.bench_function("sign", |b| b.iter(|| key.sign(std::hint::black_box(msg))));
    group.bench_function("verify", |b| {
        b.iter(|| public.verify(std::hint::black_box(msg), &sig))
    });
    group.finish();
}

fn bench_erasure(c: &mut Criterion) {
    let data = vec![0xabu8; 64 * 1024];
    let mut group = c.benchmark_group("erasure_64k");
    group.throughput(Throughput::Bytes(64 * 1024));
    group.bench_function("encode_k2_n6", |b| {
        b.iter(|| spire_crypto::erasure::encode(std::hint::black_box(&data), 2, 6).unwrap())
    });
    let shares = spire_crypto::erasure::encode(&data, 2, 6).unwrap();
    let parity = vec![shares[4].clone(), shares[5].clone()];
    group.bench_function("decode_parity_only", |b| {
        b.iter(|| spire_crypto::erasure::decode(std::hint::black_box(&parity), 2).unwrap())
    });
    group.finish();
}

fn bench_prime_codec(c: &mut Criterion) {
    let material = KeyMaterial::new([2u8; 32]);
    let signer = Signer::new(material.signing_key(NodeId(2000)), false);
    let op = ClientOp::signed(ClientId(0), 1, bytes::Bytes::from(vec![0u8; 64]), &signer);
    let msg = PrimeMsg::PoRequest {
        origin: ReplicaId(0),
        po_seq: 1,
        ops: vec![op; 16],
        sig: [7; 64],
    };
    let encoded = msg.encode();
    let mut group = c.benchmark_group("prime_codec");
    group.throughput(Throughput::Bytes(encoded.len() as u64));
    group.bench_function("encode_po_request_16ops", |b| {
        b.iter(|| std::hint::black_box(&msg).encode())
    });
    group.bench_function("decode_po_request_16ops", |b| {
        b.iter(|| PrimeMsg::decode(std::hint::black_box(&encoded)).unwrap())
    });
    group.finish();
}

fn bench_scada_master(c: &mut Criterion) {
    use spire_prime::Application;
    let mut master = ScadaMaster::new(ScadaDirectory::default());
    let op = ScadaOp::DeviceUpdate {
        rtu: 1,
        ts_us: 42,
        registers: (0..8).map(|i| (i, i * 100)).collect(),
        breakers: vec![(0, true), (1, false)],
    }
    .encode();
    c.bench_function("scada_apply_update", |b| {
        b.iter(|| master.execute(std::hint::black_box(&op)))
    });
}

fn bench_tracing(c: &mut Criterion) {
    use spire_sim::{span_key, Histogram, SpanPhase, Time, TraceKind, Tracer};
    let mut group = c.benchmark_group("tracing");
    // The disabled path is the one on every message hot path; it must be
    // branch-only (no allocation, no histogram work).
    let mut disabled = Tracer::disabled();
    group.bench_function("record_disabled", |b| {
        let mut t = 0u64;
        b.iter(|| {
            t += 1;
            disabled.record(
                Time(t),
                std::hint::black_box(TraceKind::MsgSend {
                    from: 1,
                    to: 2,
                    len: 64,
                }),
            )
        })
    });
    let mut enabled = Tracer::disabled();
    enabled.enable(65_536);
    group.bench_function("record_enabled", |b| {
        let mut t = 0u64;
        b.iter(|| {
            t += 1;
            enabled.record(
                Time(t),
                std::hint::black_box(TraceKind::MsgSend {
                    from: 1,
                    to: 2,
                    len: 64,
                }),
            )
        })
    });
    let mut span_tracer = Tracer::disabled();
    span_tracer.enable(65_536);
    group.bench_function("span_mark_confirm", |b| {
        let mut cseq = 0u64;
        b.iter(|| {
            cseq += 1;
            let key = span_key(7, cseq);
            span_tracer.mark(Time(cseq), 1, key, SpanPhase::Submit);
            span_tracer.mark(Time(cseq + 3), 2, key, SpanPhase::Confirm)
        })
    });
    let mut hist = Histogram::default();
    group.bench_function("histogram_observe", |b| {
        let mut v = 1u64;
        b.iter(|| {
            v = v.wrapping_mul(6364136223846793005).wrapping_add(1);
            hist.observe(std::hint::black_box(v >> 40))
        })
    });
    group.finish();
}

fn bench_topology(c: &mut Criterion) {
    let topology = Topology::full_mesh(24, 10);
    let mut group = c.benchmark_group("spines_routing");
    group.bench_function("dijkstra_24_mesh", |b| {
        b.iter(|| topology.shortest_path(OverlayId(0), OverlayId(23)))
    });
    group.bench_function("disjoint3_24_mesh", |b| {
        b.iter(|| topology.disjoint_paths(OverlayId(0), OverlayId(23), 3))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_crypto,
    bench_batch_auth,
    bench_rsa,
    bench_erasure,
    bench_prime_codec,
    bench_scada_master,
    bench_tracing,
    bench_topology
);
criterion_main!(benches);
