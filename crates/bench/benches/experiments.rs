//! Regenerates every table and figure of the evaluation at reduced scale
//! under `cargo bench` (see DESIGN.md for the experiment index and the
//! `exp_*` binaries for full-scale runs).

fn main() {
    let scale = spire_bench::env_u64("SPIRE_SCALE", 1);
    println!("Spire evaluation experiments (scale factor {scale}); see EXPERIMENTS.md");
    spire_bench::experiments::run_all(scale);
}
