//! Shared helpers for the Spire experiment harness.
//!
//! Each table/figure of the paper's evaluation has a binary in `src/bin/`
//! (see DESIGN.md for the index); `benches/experiments.rs` runs scaled-down
//! versions of all of them under `cargo bench`.

pub mod experiments;

use spire_sim::stats::Summary;

/// Git revision the harness was built from (stamped by `build.rs`;
/// `"unknown"` outside a checkout).
pub fn git_rev() -> &'static str {
    env!("SPIRE_GIT_REV")
}

/// Reads an experiment scale parameter from the environment.
pub fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Prints a table header followed by a separator line.
pub fn header(title: &str, columns: &str) {
    println!("\n== {title} ==");
    println!("{columns}");
    println!("{}", "-".repeat(columns.len().max(20)));
}

/// Formats a latency summary compactly for table cells.
pub fn fmt_summary(summary: &Option<Summary>) -> String {
    match summary {
        Some(s) => format!(
            "mean={:>6.1}ms p50={:>6.1}ms p99={:>7.1}ms max={:>7.1}ms",
            s.mean, s.p50, s.p99, s.max
        ),
        None => "no samples".to_string(),
    }
}

/// Buckets timestamped samples into fixed windows, returning
/// `(window_start_s, count, mean)` rows.
pub fn bucket_timeline(
    samples: &[(spire_sim::Time, f64)],
    window_s: u64,
    horizon_s: u64,
) -> Vec<(u64, usize, f64)> {
    let mut rows = Vec::new();
    let mut start = 0u64;
    while start < horizon_s {
        let end = start + window_s;
        let window: Vec<f64> = samples
            .iter()
            .filter(|(t, _)| t.0 >= start * 1_000_000 && t.0 < end * 1_000_000)
            .map(|(_, v)| *v)
            .collect();
        let mean = if window.is_empty() {
            0.0
        } else {
            window.iter().sum::<f64>() / window.len() as f64
        };
        rows.push((start, window.len(), mean));
        start = end;
    }
    rows
}

/// Runs closures on worker threads and collects their results in order.
/// (Each closure builds and runs its own simulation world.)
pub fn parallel_runs<T: Send>(jobs: Vec<Box<dyn FnOnce() -> T + Send>>) -> Vec<T> {
    std::thread::scope(|scope| {
        let handles: Vec<_> = jobs.into_iter().map(|job| scope.spawn(job)).collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("experiment thread panicked"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use spire_sim::Time;

    #[test]
    fn bucketing() {
        let samples = vec![
            (Time(500_000), 10.0),
            (Time(1_500_000), 20.0),
            (Time(1_700_000), 40.0),
        ];
        let rows = bucket_timeline(&samples, 1, 3);
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0], (0, 1, 10.0));
        assert_eq!(rows[1].1, 2);
        assert!((rows[1].2 - 30.0).abs() < 1e-9);
        assert_eq!(rows[2].1, 0);
    }

    #[test]
    fn env_parsing() {
        assert_eq!(env_u64("SPIRE_DOES_NOT_EXIST_XYZ", 7), 7);
    }

    #[test]
    fn parallel_runs_preserve_order() {
        let jobs: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..8usize)
            .map(|i| Box::new(move || i * 2) as Box<dyn FnOnce() -> usize + Send>)
            .collect();
        assert_eq!(parallel_runs(jobs), vec![0, 2, 4, 6, 8, 10, 12, 14]);
    }
}
