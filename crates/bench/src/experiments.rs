//! Implementations of the paper's evaluation experiments (tables T1-T3,
//! figures F1-F6). Each function prints the table/series the corresponding
//! paper artifact reports; binaries in `src/bin/` run them at full scale
//! and `benches/experiments.rs` at reduced scale.

use crate::{bucket_timeline, fmt_summary, header, parallel_runs};
use spire::attack::Scenario;
use spire::deployment::{Deployment, DeploymentConfig, Substrate};
use spire::{BaselineDeployment, SpireConfig};
use spire_prime::{ByzBehavior, ProtocolMode};
use spire_scada::WorkloadConfig;
use spire_sim::stats::{fraction_within, percentile, Summary};
use spire_sim::{Span, Time};

fn secs(s: u64) -> Time {
    Time(s * 1_000_000)
}

/// When the deployment ran with tracing on (`SPIRE_TRACE` set), prints
/// the per-phase latency breakdown and writes the Chrome trace + JSONL
/// event dumps to `spire-trace-<tag>.{json,jsonl}`.
pub fn trace_hooks(system: &Deployment, report: &spire::Report, tag: &str) {
    if !system.cfg.trace {
        return;
    }
    let table = report.phase_table();
    if !table.is_empty() {
        println!("\nper-phase latency breakdown ({tag}):\n{table}");
    }
    let chrome = format!("spire-trace-{tag}.json");
    match system.export_chrome_trace(&chrome) {
        Ok(()) => {
            println!("chrome trace -> {chrome} (load in chrome://tracing or ui.perfetto.dev)")
        }
        Err(e) => eprintln!("chrome trace export failed: {e}"),
    }
    let jsonl = format!("spire-trace-{tag}.jsonl");
    match system.export_events_jsonl(&jsonl) {
        Ok(()) => println!("flight-recorder events -> {jsonl}"),
        Err(e) => eprintln!("event export failed: {e}"),
    }
}

/// T1 — resource requirements: replicas needed for (f, k), with and
/// without tolerance to one site disconnection, vs prior systems.
pub fn t1_configurations() {
    header(
        "T1: replicas required (3f+2k+1 analysis)",
        "  f  k |  BFT(3f+1) | +recovery (3f+2k+1) | +1-site-loss: 2 sites  4 sites  6 sites",
    );
    for f in 1..=3u32 {
        for k in 0..=2u32 {
            let bft = 3 * f + 1;
            let spire_n = spire::required_replicas(f, k);
            let over = |sites| {
                SpireConfig::min_replicas_site_tolerant(f, k, sites)
                    .map(|n| n.to_string())
                    .unwrap_or_else(|| "-".to_string())
            };
            println!(
                "  {f}  {k} | {bft:>10} | {spire_n:>19} | {:>21} {:>8} {:>8}",
                over(2),
                over(4),
                over(6)
            );
        }
    }
    println!("\nPaper's deployed configuration: f=1, k=1 -> 6 replicas as 2+2+1+1");
    println!("over 2 control centers + 2 data centers (site-loss tolerant).");
    let cfg = SpireConfig::spread(1, 1, 2);
    assert!(cfg.validate(true).is_ok());
}

/// T2 — long-running wide-area deployment: latency statistics and SLA
/// conformance over `duration_s` simulated seconds with periodic proactive
/// recoveries (the paper's 30-hour wide-area test, time-scaled).
pub fn t2_longrun(duration_s: u64) -> Summary {
    let mut cfg = DeploymentConfig::wide_area(2024);
    cfg.workload = WorkloadConfig {
        rtus: 10,
        update_interval: Span::secs(1),
        hmis: 1,
        command_interval: Span::secs(30),
        ..Default::default()
    };
    let mut system = Deployment::build(cfg);
    // One proactive recovery per minute, round-robin over the 6 replicas.
    system.schedule_proactive_recovery(secs(30), Span::secs(60), secs(duration_s));
    system.run_for(Span::secs(duration_s));
    let report = system.report();
    let summary = report.update_summary.expect("updates flowed");
    header(
        &format!("T2: wide-area long run ({duration_s} simulated seconds)"),
        "metric                         value",
    );
    println!("updates sent                   {}", report.updates_sent);
    println!(
        "updates confirmed              {}",
        report.updates_confirmed
    );
    println!(
        "delivery ratio                 {:.4}",
        report.delivery_ratio()
    );
    println!("mean latency                   {:.2} ms", summary.mean);
    println!("median latency                 {:.2} ms", summary.p50);
    println!("99th percentile                {:.2} ms", summary.p99);
    println!("99.9th percentile              {:.2} ms", summary.p999);
    println!("max latency                    {:.2} ms", summary.max);
    println!(
        "within 100 ms SLA              {:.3} %",
        report.sla_fraction * 100.0
    );
    println!(
        "proactive recoveries           {} started / {} completed",
        report.recoveries.0, report.recoveries.1
    );
    println!("view changes                   {}", report.view_changes);
    println!("silent seconds                 {}", report.silent_seconds());
    println!(
        "safety                         {}",
        if report.safety_ok { "OK" } else { "VIOLATED" }
    );
    trace_hooks(&system, &report, "t2");
    summary
}

/// F1 — CDF of end-to-end update latency: wide-area vs single-site LAN.
pub fn f1_latency_cdf(duration_s: u64) {
    let run = move |lan: bool| {
        let mut cfg = if lan {
            DeploymentConfig::lan(77)
        } else {
            DeploymentConfig::wide_area(77)
        };
        cfg.workload = WorkloadConfig {
            rtus: 10,
            update_interval: Span::millis(500),
            ..Default::default()
        };
        let mut system = Deployment::build(cfg);
        system.run_for(Span::secs(duration_s));
        let report = system.report();
        trace_hooks(&system, &report, if lan { "f1-lan" } else { "f1-wan" });
        report.update_latencies_ms
    };
    let jobs: Vec<Box<dyn FnOnce() -> Vec<f64> + Send>> =
        vec![Box::new(move || run(false)), Box::new(move || run(true))];
    let mut results = parallel_runs(jobs);
    let lan = results.pop().unwrap();
    let wan = results.pop().unwrap();
    header(
        "F1: update latency CDF (proxy -> f+1 confirmations)",
        "percentile |   LAN (1 site)   | wide-area (2CC+2DC)",
    );
    for pct in [10.0, 25.0, 50.0, 75.0, 90.0, 95.0, 99.0, 99.9] {
        println!(
            "  {pct:>6.1}% | {:>13.2} ms | {:>16.2} ms",
            percentile(&lan, pct),
            percentile(&wan, pct)
        );
    }
    println!(
        "within 100ms SLA: LAN {:.2}%, wide-area {:.2}%",
        fraction_within(&lan, 100.0) * 100.0,
        fraction_within(&wan, 100.0) * 100.0
    );
}

/// F2 — latency/throughput timeline across proactive recovery events.
pub fn f2_recovery_timeline(duration_s: u64, recovery_period_s: u64) {
    let mut cfg = DeploymentConfig::wide_area(88);
    cfg.workload = WorkloadConfig {
        rtus: 8,
        update_interval: Span::millis(500),
        ..Default::default()
    };
    let mut system = Deployment::build(cfg);
    system.schedule_proactive_recovery(
        secs(recovery_period_s),
        Span::secs(recovery_period_s),
        secs(duration_s),
    );
    system.run_for(Span::secs(duration_s));
    let report = system.report();
    trace_hooks(&system, &report, "f2");
    header(
        &format!(
            "F2: timeline with a proactive recovery every {recovery_period_s} s (offered: 16 updates/s)"
        ),
        "  t(s) | updates confirmed | mean latency",
    );
    for (t, count, mean) in bucket_timeline(&report.update_timeline, 5, duration_s) {
        let marker = if t > 0 && (t % recovery_period_s) < 5 {
            "  <- recovery"
        } else {
            ""
        };
        println!("  {t:>4} | {count:>17} | {mean:>9.1} ms{marker}");
    }
    println!(
        "recoveries completed: {} / {}; safety {}",
        report.recoveries.1,
        report.recoveries.0,
        if report.safety_ok { "OK" } else { "VIOLATED" }
    );
}

/// F3 — behaviour under network attack: DoS then full disconnection of the
/// primary control center; Spire vs the single-CC baseline.
pub fn f3_network_attack(duration_s: u64) {
    let dos_from = duration_s / 4;
    let cut_from = duration_s / 2;
    let repair = duration_s * 3 / 4;
    let workload = WorkloadConfig {
        rtus: 8,
        update_interval: Span::millis(500),
        ..Default::default()
    };

    let spire_timeline = {
        let mut cfg = DeploymentConfig::wide_area(99);
        cfg.workload = workload;
        let mut system = Deployment::build(cfg);
        system.schedule_site_dos(0, secs(dos_from), secs(cut_from), 0.7);
        system.schedule_site_disconnect(0, secs(cut_from), secs(repair));
        system.run_for(Span::secs(duration_s));
        let report = system.report();
        assert!(report.safety_ok, "safety violated under network attack");
        trace_hooks(&system, &report, "f3");
        report.update_timeline
    };
    let baseline_timeline = {
        let mut baseline = BaselineDeployment::build(99, workload, true);
        baseline.schedule_cc_outage(secs(cut_from), secs(repair));
        // Model the DoS phase as heavy loss on the CC links too.
        baseline.run_for(Span::secs(duration_s));
        baseline
            .world
            .metrics()
            .series("scada.update_latency_ms")
            .to_vec()
    };
    header(
        &format!(
            "F3: DoS on CC1 at {dos_from}s, disconnection {cut_from}s-{repair}s (offered: 16 updates/s)"
        ),
        "  t(s) | Spire confirmed / mean | baseline confirmed / mean",
    );
    let spire_rows = bucket_timeline(&spire_timeline, 5, duration_s);
    let base_rows = bucket_timeline(&baseline_timeline, 5, duration_s);
    for (s_row, b_row) in spire_rows.iter().zip(base_rows.iter()) {
        let phase = if s_row.0 >= cut_from && s_row.0 < repair {
            " <- CC1 cut"
        } else if s_row.0 >= dos_from && s_row.0 < cut_from {
            " <- CC1 DoS"
        } else {
            ""
        };
        println!(
            "  {:>4} | {:>9} {:>8.1}ms | {:>12} {:>8.1}ms{phase}",
            s_row.0, s_row.1, s_row.2, b_row.1, b_row.2
        );
    }
}

/// F4 — latency vs offered load: Spire (wide-area, 6 replicas) vs the
/// unreplicated baseline, sweeping the per-RTU update interval.
pub fn f4_throughput(duration_s: u64) {
    header(
        "F4: latency vs offered load (10 RTUs)",
        "  updates/s | Spire mean / p99 / delivered      | baseline mean / p99 / delivered",
    );
    let intervals_ms = [1000u64, 500, 200, 100, 50, 20, 10];
    type Row = (f64, Option<Summary>, f64, Option<Summary>, f64);
    let jobs: Vec<Box<dyn FnOnce() -> Row + Send>> = intervals_ms
        .iter()
        .map(|interval| {
            let interval = *interval;
            Box::new(move || {
                let workload = WorkloadConfig {
                    rtus: 10,
                    update_interval: Span::millis(interval),
                    ..Default::default()
                };
                let offered = workload.updates_per_second();
                let mut cfg = DeploymentConfig::wide_area(3000 + interval);
                cfg.workload = workload;
                let mut system = Deployment::build(cfg);
                system.run_for(Span::secs(duration_s));
                let report = system.report();
                trace_hooks(&system, &report, &format!("f4-{interval}ms"));
                let mut baseline = BaselineDeployment::build(3000 + interval, workload, true);
                baseline.run_for(Span::secs(duration_s));
                let m = baseline.world.metrics();
                let base_lat = m.values("scada.update_latency_ms");
                let base_ratio = if m.counter("scada.updates_sent") == 0 {
                    0.0
                } else {
                    m.counter("scada.updates_confirmed") as f64
                        / m.counter("scada.updates_sent") as f64
                };
                (
                    offered,
                    report.update_summary,
                    report.delivery_ratio(),
                    Summary::of(&base_lat),
                    base_ratio,
                )
            }) as Box<dyn FnOnce() -> Row + Send>
        })
        .collect();
    for (offered, spire_sum, spire_ratio, base_sum, base_ratio) in parallel_runs(jobs) {
        let fmt = |s: &Option<Summary>| match s {
            Some(s) => format!("{:>7.1} / {:>7.1}", s.mean, s.p99),
            None => "      - /      -".to_string(),
        };
        println!(
            "  {offered:>9.0} | {} / {:>5.1}% | {} / {:>5.1}%",
            fmt(&spire_sum),
            spire_ratio * 100.0,
            fmt(&base_sum),
            base_ratio * 100.0
        );
    }
}

/// F5 — the leader performance attack: latency under a proposal-delaying
/// leader, Prime vs PBFT-like, sweeping the injected delay.
pub fn f5_leader_attack(duration_s: u64) {
    header(
        "F5: malicious leader delaying proposals (update latency)",
        "  delay(ms) | Prime p50 / view-changes | PBFT-like p50 / view-changes",
    );
    let delays_ms = [0u64, 200, 500, 900, 1500];
    type Row = (u64, f64, u64, f64, u64);
    let jobs: Vec<Box<dyn FnOnce() -> Row + Send>> = delays_ms
        .iter()
        .map(|delay| {
            let delay = *delay;
            Box::new(move || {
                let run = |mode: ProtocolMode| {
                    let mut cfg = DeploymentConfig::wide_area(4000 + delay);
                    cfg.mode = mode;
                    cfg.workload = WorkloadConfig {
                        rtus: 5,
                        update_interval: Span::millis(500),
                        ..Default::default()
                    };
                    if delay > 0 {
                        cfg.byz
                            .insert(0, ByzBehavior::LeaderDelay(Span::millis(delay)));
                    }
                    let mut system = Deployment::build(cfg);
                    system.run_for(Span::secs(duration_s));
                    let report = system.report();
                    trace_hooks(&system, &report, &format!("f5-{mode:?}-{delay}ms"));
                    let p50 = if report.update_latencies_ms.is_empty() {
                        f64::NAN
                    } else {
                        percentile(&report.update_latencies_ms, 50.0)
                    };
                    (p50, report.view_changes)
                };
                let (prime_p50, prime_vc) = run(ProtocolMode::Prime);
                let (pbft_p50, pbft_vc) = run(ProtocolMode::PbftLike);
                (delay, prime_p50, prime_vc, pbft_p50, pbft_vc)
            }) as Box<dyn FnOnce() -> Row + Send>
        })
        .collect();
    for (delay, prime_p50, prime_vc, pbft_p50, pbft_vc) in parallel_runs(jobs) {
        println!(
            "  {delay:>9} | {prime_p50:>9.1} ms / {prime_vc:>4} | {pbft_p50:>12.1} ms / {pbft_vc:>4}"
        );
    }
    println!("\nShape check: Prime's p50 stays near the no-attack level (the slow");
    println!("leader is replaced); the PBFT-like p50 grows with the injected delay.");
}

/// F6 — overlay dissemination resilience: delivery ratio vs number of
/// failed overlay nodes for each dissemination mode.
pub fn f6_overlay_resilience(messages: u32) {
    use bytes::Bytes;
    use spire_crypto::{KeyMaterial, KeyStore};
    use spire_sim::{Context, LinkConfig, Process, ProcessId, World};
    use spire_spines::{
        DaemonBehavior, DaemonConfig, Dissemination, OverlayAddr, OverlayId, OverlayNetwork,
        SpinesPort, Topology,
    };
    use std::sync::Arc;

    struct Rx {
        port: SpinesPort,
    }
    impl Process for Rx {
        fn on_start(&mut self, ctx: &mut Context<'_>) {
            self.port.attach(ctx);
        }
        fn on_message(&mut self, ctx: &mut Context<'_>, _from: ProcessId, bytes: &Bytes) {
            if SpinesPort::decode_deliver(bytes).is_some() {
                ctx.count("f6.rx", 1);
            }
        }
    }
    struct Tx {
        port: SpinesPort,
        dst: OverlayAddr,
        mode: Dissemination,
        remaining: u32,
    }
    impl Process for Tx {
        fn on_start(&mut self, ctx: &mut Context<'_>) {
            self.port.attach(ctx);
            ctx.set_timer(Span::millis(20), 1);
        }
        fn on_message(&mut self, _: &mut Context<'_>, _: ProcessId, _: &Bytes) {}
        fn on_timer(&mut self, ctx: &mut Context<'_>, _tag: u64) {
            if self.remaining > 0 {
                self.remaining -= 1;
                self.port.send(
                    ctx,
                    self.dst,
                    self.mode,
                    false,
                    Bytes::from_static(&[0u8; 64]),
                );
                ctx.set_timer(Span::millis(20), 1);
            }
        }
    }

    // 12-node overlay: ring + two chords (three disjoint paths 0 -> 6).
    let build_topology = || {
        let mut t = Topology::ring(12, 10);
        t.add_edge(OverlayId(0), OverlayId(4), 12);
        t.add_edge(OverlayId(4), OverlayId(8), 12);
        t.add_edge(OverlayId(2), OverlayId(10), 12);
        t
    };
    header(
        "F6: overlay delivery ratio vs failed daemons (12-node overlay)",
        "  failed | shortest-path | 3 disjoint paths | constrained flooding",
    );
    for failures in 0..=4u16 {
        let mut ratios = Vec::new();
        for mode in [
            Dissemination::Shortest,
            Dissemination::DisjointPaths(3),
            Dissemination::Flood,
        ] {
            let traced = std::env::var_os("SPIRE_TRACE").is_some();
            let mut world = World::new(1000 + failures as u64);
            let material = KeyMaterial::new([6u8; 32]);
            let keystore = Arc::new(KeyStore::for_nodes(&material, 64));
            let topology = build_topology();
            let net = OverlayNetwork::build(
                &mut world,
                &topology,
                DaemonConfig::default(),
                &material,
                &keystore,
                0,
                |_, _| LinkConfig::wan(5),
                |_| DaemonBehavior::Honest,
            );
            if traced {
                world.enable_tracing(16_384);
                for node in topology.nodes() {
                    let pid = net.daemon_pid(node);
                    world.tracer_mut().mark_overlay(pid.0);
                }
            }
            let rx_port = SpinesPort::new(
                net.daemon_pid(OverlayId(6)),
                OverlayAddr {
                    node: OverlayId(6),
                    port: 1,
                },
            );
            let rx = world.add_process("rx", Box::new(Rx { port: rx_port }));
            net.wire_client(&mut world, OverlayId(6), rx);
            let tx_port = SpinesPort::new(
                net.daemon_pid(OverlayId(0)),
                OverlayAddr {
                    node: OverlayId(0),
                    port: 2,
                },
            );
            let tx = world.add_process(
                "tx",
                Box::new(Tx {
                    port: tx_port,
                    dst: OverlayAddr {
                        node: OverlayId(6),
                        port: 1,
                    },
                    mode,
                    remaining: messages,
                }),
            );
            net.wire_client(&mut world, OverlayId(0), tx);
            // Fail daemons at t=1s, chosen for a stepwise story: the first
            // kill (5) breaks the shortest path 0-4-5-6; the second (9)
            // breaks the second disjoint path 0-11-...-6; flooding survives
            // every kill because 0-4-8-7-6 stays connected throughout.
            let victims = [5u16, 9, 11, 3];
            for v in victims.iter().take(failures as usize) {
                let pid = net.daemon_pid(OverlayId(*v));
                world.schedule_control(Time(1_000_000), move |w| w.crash(pid));
            }
            world.run_for(Span::secs(60));
            let delivered = world.metrics().counter("f6.rx");
            if traced && failures == 0 {
                if let Some(h) = world.metrics().histogram("overlay.hop_us") {
                    println!(
                        "  [trace] {mode:?}: {} overlay hops, mean {:.0} us, p99 {:.0} us",
                        h.count(),
                        h.mean(),
                        h.percentile(99.0)
                    );
                }
            }
            ratios.push(delivered as f64 / messages as f64);
        }
        println!(
            "  {failures:>6} | {:>12.1}% | {:>15.1}% | {:>19.1}%",
            ratios[0] * 100.0,
            ratios[1] * 100.0,
            ratios[2] * 100.0
        );
    }
    println!("\nShape check: shortest-path degrades once its path dies until");
    println!("re-routing converges; flooding survives anything that leaves the");
    println!("graph connected.");
}

/// Ablation A1 — Spines per-source fairness on/off under a flooding
/// attacker (the DESIGN.md design-choice ablation).
pub fn a1_fairness(messages: u32) {
    use bytes::Bytes;
    use spire_crypto::{KeyMaterial, KeyStore};
    use spire_sim::{Context, LinkConfig, Process, ProcessId, World};
    use spire_spines::{
        DaemonBehavior, DaemonConfig, Dissemination, OverlayAddr, OverlayId, OverlayNetwork,
        SpinesPort, Topology,
    };
    use std::sync::Arc;

    struct Rx {
        port: SpinesPort,
    }
    impl Process for Rx {
        fn on_start(&mut self, ctx: &mut Context<'_>) {
            self.port.attach(ctx);
        }
        fn on_message(&mut self, ctx: &mut Context<'_>, _from: ProcessId, bytes: &Bytes) {
            if SpinesPort::decode_deliver(bytes).is_some() {
                ctx.count("a1.rx", 1);
            }
        }
    }
    struct Tx {
        port: SpinesPort,
        dst: OverlayAddr,
        remaining: u32,
        interval: Span,
    }
    impl Process for Tx {
        fn on_start(&mut self, ctx: &mut Context<'_>) {
            self.port.attach(ctx);
            ctx.set_timer(self.interval, 1);
        }
        fn on_message(&mut self, _: &mut Context<'_>, _: ProcessId, _: &Bytes) {}
        fn on_timer(&mut self, ctx: &mut Context<'_>, _tag: u64) {
            if self.remaining > 0 {
                self.remaining -= 1;
                self.port.send(
                    ctx,
                    self.dst,
                    Dissemination::Flood,
                    false,
                    Bytes::from_static(&[0u8; 256]),
                );
                ctx.set_timer(self.interval, 1);
            }
        }
    }

    header(
        "A1 (ablation): flooding attacker vs per-source fairness",
        "  fairness | legitimate delivered | attacker msgs | rate-limited drops",
    );
    for fairness in [true, false] {
        let mut cfg = DaemonConfig::default();
        if !fairness {
            cfg.flood_rate_per_source = f64::INFINITY;
            cfg.flood_burst = f64::INFINITY;
        } else {
            // Tight budget so the contrast is visible at bench scale.
            cfg.flood_rate_per_source = 200.0;
            cfg.flood_burst = 50.0;
        }
        let mut world = World::new(31337);
        let material = KeyMaterial::new([8u8; 32]);
        let keystore = Arc::new(KeyStore::for_nodes(&material, 64));
        let topology = Topology::ring(6, 10);
        // Narrow links so the attacker can actually congest them.
        let net = OverlayNetwork::build(
            &mut world,
            &topology,
            cfg,
            &material,
            &keystore,
            0,
            |_, _| LinkConfig::wan(5).with_bandwidth(2_000_000),
            |_| DaemonBehavior::Honest,
        );
        let rx_port = SpinesPort::new(
            net.daemon_pid(OverlayId(3)),
            OverlayAddr {
                node: OverlayId(3),
                port: 1,
            },
        );
        let rx = world.add_process("rx", Box::new(Rx { port: rx_port }));
        net.wire_client(&mut world, OverlayId(3), rx);
        let legit_port = SpinesPort::new(
            net.daemon_pid(OverlayId(0)),
            OverlayAddr {
                node: OverlayId(0),
                port: 2,
            },
        );
        let legit = world.add_process(
            "legit",
            Box::new(Tx {
                port: legit_port,
                dst: OverlayAddr {
                    node: OverlayId(3),
                    port: 1,
                },
                remaining: messages,
                interval: Span::millis(50),
            }),
        );
        net.wire_client(&mut world, OverlayId(0), legit);
        // Three flooding attackers behind different daemons, together ~4x
        // the links' capacity for the whole legitimate send window.
        for (i, node) in [1u16, 4, 5].into_iter().enumerate() {
            let attacker_port = SpinesPort::new(
                net.daemon_pid(OverlayId(node)),
                OverlayAddr {
                    node: OverlayId(node),
                    port: 30 + i as u16,
                },
            );
            let attacker = world.add_process(
                &format!("attacker-{i}"),
                Box::new(Tx {
                    port: attacker_port,
                    dst: OverlayAddr {
                        node: OverlayId(2),
                        port: 9,
                    },
                    remaining: messages * 100,
                    interval: Span::micros(500),
                }),
            );
            net.wire_client(&mut world, OverlayId(node), attacker);
        }
        world.run_for(Span::secs(120));
        println!(
            "  {:>8} | {:>19.1}% | {:>13} | {:>18}",
            if fairness { "on" } else { "off" },
            world.metrics().counter("a1.rx") as f64 / messages as f64 * 100.0,
            messages * 300,
            world.metrics().counter("spines.flood_rate_limited"),
        );
    }
    println!("\nShape check: with fairness off, the attacker's flood congests the");
    println!("narrow links and legitimate delivery collapses; with per-source");
    println!("rate limits on, the attacker is clamped and delivery is unaffected.");
}

/// Ablation A2 — dual-homed vs single-homed substations under the loss of
/// the primary control center.
pub fn a2_dual_homing(duration_s: u64) {
    header(
        "A2 (ablation): substation homing vs loss of the primary CC",
        "  homing | confirmed during outage | confirmed overall",
    );
    let cut_from = duration_s / 3;
    let cut_until = duration_s * 2 / 3;
    for dual in [true, false] {
        let mut cfg = DeploymentConfig::wide_area(555);
        cfg.dual_homed_substations = dual;
        cfg.workload = WorkloadConfig {
            rtus: 6,
            update_interval: Span::millis(500),
            ..Default::default()
        };
        let mut system = Deployment::build(cfg);
        system.schedule_site_disconnect(0, secs(cut_from), secs(cut_until));
        system.run_for(Span::secs(duration_s));
        let report = system.report();
        let during: usize = report
            .update_timeline
            .iter()
            .filter(|(t, _)| t.0 > (cut_from + 5) * 1_000_000 && t.0 < cut_until * 1_000_000)
            .count();
        println!(
            "  {:>6} | {:>23} | {:>16.1}%",
            if dual { "dual" } else { "single" },
            during,
            report.delivery_ratio() * 100.0
        );
    }
    println!("\nShape check: dual-homed substations keep reporting through the");
    println!("outage via the second control center; single-homed ones go dark.");
}

/// Ablation A3 — amortized authentication: signature operations per
/// delivered update with real ed25519, per-message vs Merkle batch
/// signing, with the mock-signature fast path as the reference row.
pub fn a3_amortized_auth(duration_s: u64) -> (f64, f64) {
    header(
        "A3 (perf): signature amortization (6 replicas, 20 RTUs @ 20/s, real ed25519)",
        "  config            | signs/update | cache hit% | msgs/flush | delivery | safety",
    );
    type Row = (&'static str, f64, f64, f64, f64, bool, f64);
    let jobs: Vec<Box<dyn FnOnce() -> Row + Send>> = [
        ("mock per-message", true, false),
        ("real per-message", false, false),
        ("real batch-signed", false, true),
    ]
    .into_iter()
    .map(|(name, mock, batch)| {
        Box::new(move || {
            let started = std::time::Instant::now();
            let mut cfg = DeploymentConfig::wide_area(6100);
            cfg.mock_sigs = mock;
            cfg.batch_signing = batch;
            // An 8 ms signing window keeps p99 within the 100 ms SLA while
            // filling batches at this offered load (~400 updates/s).
            cfg.batch_interval = Span::millis(8);
            cfg.workload = WorkloadConfig {
                rtus: 20,
                update_interval: Span::millis(50),
                ..Default::default()
            };
            let mut system = Deployment::build(cfg);
            system.run_for(Span::secs(duration_s));
            let report = system.report();
            let hits = report.auth.verify_cache_hits as f64;
            let looked_up = hits + report.auth.verify_ops as f64;
            let hit_pct = if looked_up > 0.0 {
                hits / looked_up * 100.0
            } else {
                0.0
            };
            (
                name,
                report.signs_per_update(),
                hit_pct,
                report.auth.amortization_factor(),
                report.delivery_ratio(),
                report.safety_ok,
                started.elapsed().as_secs_f64(),
            )
        }) as Box<dyn FnOnce() -> Row + Send>
    })
    .collect();
    let rows = parallel_runs(jobs);
    for (name, spu, hit_pct, amortize, delivery, safety, wall_s) in &rows {
        println!(
            "  {name:<17} | {spu:>12.2} | {hit_pct:>9.1}% | {amortize:>10.1} | {:>7.1}% | {} ({wall_s:.0}s wall)",
            delivery * 100.0,
            if *safety { "OK" } else { "VIOLATED" }
        );
    }
    let per_msg = rows[1].1;
    let batched = rows[2].1;
    println!("\nShape check: batch signing amortizes one root signature over every");
    println!("vote, reply, and PO-request issued within one signing window,");
    println!(
        "cutting signature ops per delivered update by {:.1}x with identical",
        per_msg / batched
    );
    println!("safety and delivery.");
    (per_msg, batched)
}

/// F6-chaos — the seeded chaos adversary matrix: each row is one
/// reproducible randomized fault schedule (crash/recover churn, rolling
/// recoveries, compromises within the `f` budget, site DoS/disconnect
/// windows, wire faults) with the online invariant checker running
/// throughout. Every row must end with zero violations: the chaos plan
/// stays within the tolerated fault envelope by construction, so any
/// violation is a protocol bug — reproducible by its seed.
pub fn f6_chaos(seeds: &[u64], duration_s: u64) -> bool {
    use spire::chaos::ChaosPlan;
    header(
        &format!("F6-chaos: seeded chaos runs ({duration_s} simulated seconds each)"),
        "  seed | events | delivery |   SLA  | VCs | recov | corrupt/dup frames | checks | violations",
    );
    type Row = (u64, usize, f64, f64, u64, (u64, u64), u64, u64, u64, u64);
    let jobs: Vec<Box<dyn FnOnce() -> Row + Send>> = seeds
        .iter()
        .map(|&seed| {
            Box::new(move || {
                let mut cfg = DeploymentConfig::wide_area(seed);
                cfg.workload = WorkloadConfig {
                    rtus: 6,
                    update_interval: Span::millis(500),
                    ..Default::default()
                };
                let plan = ChaosPlan::generate(seed, &cfg.spire, Span::secs(duration_s));
                let scenario = plan.scenario();
                let mut system = Deployment::build(cfg);
                scenario.apply(&mut system);
                system.run_for(scenario.duration + Span::secs(5));
                let report = system.report();
                (
                    seed,
                    plan.log.len(),
                    report.delivery_ratio(),
                    report.sla_fraction,
                    report.view_changes,
                    report.recoveries,
                    report.chaos.corrupted_frames,
                    report.chaos.duplicated_frames,
                    report.chaos.invariant_checks,
                    report.chaos.invariant_violations,
                )
            }) as Box<dyn FnOnce() -> Row + Send>
        })
        .collect();
    let mut all_clean = true;
    for (seed, events, delivery, sla, vcs, recov, corrupt, dup, checks, violations) in
        parallel_runs(jobs)
    {
        all_clean &= violations == 0;
        println!(
            "  {seed:>4} | {events:>6} | {:>7.1}% | {:>5.1}% | {vcs:>3} | {}/{} | {corrupt:>8} / {dup:<8} | {checks:>6} | {violations:>10}",
            delivery * 100.0,
            sla * 100.0,
            recov.1,
            recov.0,
        );
        if violations > 0 {
            println!("       ^ REPRODUCE: run_scenario --chaos={seed} --duration={duration_s}");
        }
    }
    println!(
        "\nShape check: every seed ends with zero invariant violations — the\n\
         generated fault schedules stay within the f={}/k={} envelope, so the\n\
         protocol must absorb them all.",
        1, 1
    );
    all_clean
}

/// T3 — the red-team scenario matrix.
pub fn t3_red_team() {
    header(
        "T3: red-team scenario matrix (f=1, k=1, 6 replicas, 6 RTUs)",
        "scenario                                         | safety | delivery |   SLA  | VCs",
    );
    type Row = (String, bool, f64, f64, u64);
    let jobs: Vec<Box<dyn FnOnce() -> Row + Send>> = Scenario::red_team_suite()
        .into_iter()
        .enumerate()
        .map(|(i, scenario)| {
            Box::new(move || {
                let mut cfg = DeploymentConfig::wide_area(7000 + i as u64);
                cfg.workload = WorkloadConfig {
                    rtus: 6,
                    update_interval: Span::millis(500),
                    ..Default::default()
                };
                let mut system = Deployment::build(cfg);
                scenario.apply(&mut system);
                system.run_for(scenario.duration + Span::secs(5));
                let report = system.report();
                (
                    scenario.name.clone(),
                    report.safety_ok,
                    report.delivery_ratio(),
                    report.sla_fraction,
                    report.view_changes,
                )
            }) as Box<dyn FnOnce() -> Row + Send>
        })
        .collect();
    for (name, safety, delivery, sla, vcs) in parallel_runs(jobs) {
        println!(
            "{name:<48} | {:>6} | {:>7.1}% | {:>5.1}% | {vcs:>3}",
            if safety { "OK" } else { "BROKEN" },
            delivery * 100.0,
            sla * 100.0
        );
    }
}

/// RT — substrate throughput comparison: the same 6-replica f=1 k=1
/// system, identical workload sweep, hosted on the single-threaded
/// discrete-event simulator vs the multi-threaded real-clock runtime.
///
/// The comparable number is **confirmed updates per wall-clock second**:
/// the simulator executes `point_secs` of virtual time as fast as one core
/// allows, while the rt substrate runs `point_secs` of real time across
/// worker threads. On a multicore host the rt substrate overtakes the
/// simulator once the single event loop saturates its core; the emitted
/// JSON records the host's core count so single-core results are not
/// mistaken for a parallel speedup.
pub fn rt_throughput(point_secs: u64, json_out: Option<&str>) {
    header(
        "RT: confirmed updates/s by substrate (10 RTUs, f=1 k=1)",
        "  offered/s | substrate | confirmed | delivery | wall s | confirmed/wall s | safety",
    );
    struct Row {
        substrate: &'static str,
        interval_ms: u64,
        offered: f64,
        sent: u64,
        confirmed: u64,
        delivery: f64,
        safety: bool,
        wall_s: f64,
        rate: f64,
        p99_ms: Option<f64>,
        threads: usize,
    }
    let mut rows: Vec<Row> = Vec::new();
    let intervals_ms = [200u64, 100, 50, 20, 10, 5];
    for interval in intervals_ms {
        let workload = WorkloadConfig {
            rtus: 10,
            update_interval: Span::millis(interval),
            ..Default::default()
        };
        let offered = workload.updates_per_second();
        let mut cfg = DeploymentConfig::wide_area(8800 + interval);
        cfg.workload = workload;
        cfg.trace = false;

        // Sim leg: virtual seconds, wall-timed.
        let mut system = Deployment::build(cfg.clone());
        let start = std::time::Instant::now();
        system.run_for(Span::secs(point_secs));
        let wall_s = start.elapsed().as_secs_f64();
        let report = system.report();
        rows.push(Row {
            substrate: "sim",
            interval_ms: interval,
            offered,
            sent: report.updates_sent,
            confirmed: report.updates_confirmed,
            delivery: report.delivery_ratio(),
            safety: report.safety_ok,
            wall_s,
            rate: report.updates_confirmed as f64 / wall_s.max(1e-9),
            p99_ms: report.update_summary.as_ref().map(|s| s.p99),
            threads: 1,
        });

        // Rt leg: real seconds on OS threads.
        let rt = Deployment::build(cfg).into_rt(0);
        let start = std::time::Instant::now();
        let outcome = rt.run_for(Span::secs(point_secs));
        let wall_s = start.elapsed().as_secs_f64();
        let report = outcome.report;
        rows.push(Row {
            substrate: "rt",
            interval_ms: interval,
            offered,
            sent: report.updates_sent,
            confirmed: report.updates_confirmed,
            delivery: report.delivery_ratio(),
            safety: report.safety_ok,
            wall_s,
            rate: report.updates_confirmed as f64 / wall_s.max(1e-9),
            p99_ms: report.update_summary.as_ref().map(|s| s.p99),
            threads: outcome.run.threads,
        });
    }
    for row in &rows {
        println!(
            "  {:>9.0} | {:>9} | {:>9} | {:>7.1}% | {:>6.2} | {:>16.1} | {}",
            row.offered,
            row.substrate,
            row.confirmed,
            row.delivery * 100.0,
            row.wall_s,
            row.rate,
            if row.safety { "OK" } else { "BROKEN" }
        );
    }
    let peak = |substrate: &str| {
        rows.iter()
            .filter(|r| r.substrate == substrate)
            .map(|r| r.rate)
            .fold(0.0f64, f64::max)
    };
    let (sim_peak, rt_peak) = (peak("sim"), peak("rt"));
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!(
        "\npeak confirmed/wall s: sim {sim_peak:.1}, rt {rt_peak:.1} \
         (rt/sim {:.2}x on {cores} core(s))",
        rt_peak / sim_peak.max(1e-9)
    );

    // Worker-count sweep: the same 200 offered updates/s on rt with 1, 2,
    // and 4 runtime workers, showing how the sharded run queues scale
    // with thread count (flat when the host has fewer physical cores).
    println!("\n  worker sweep at 200 offered/s (host has {cores} core(s)):");
    println!("    workers | confirmed | delivery |  p99 ms | safety");
    let mut sweep: Vec<Row> = Vec::new();
    for workers in [1usize, 2, 4] {
        let workload = WorkloadConfig {
            rtus: 10,
            update_interval: Span::millis(50),
            ..Default::default()
        };
        let offered = workload.updates_per_second();
        let mut cfg = DeploymentConfig::wide_area(8900 + workers as u64);
        cfg.workload = workload;
        cfg.trace = false;
        let rt = Deployment::build(cfg).into_rt(workers);
        let start = std::time::Instant::now();
        let outcome = rt.run_for(Span::secs(point_secs));
        let wall_s = start.elapsed().as_secs_f64();
        let report = outcome.report;
        let row = Row {
            substrate: "rt",
            interval_ms: 50,
            offered,
            sent: report.updates_sent,
            confirmed: report.updates_confirmed,
            delivery: report.delivery_ratio(),
            safety: report.safety_ok,
            wall_s,
            rate: report.updates_confirmed as f64 / wall_s.max(1e-9),
            p99_ms: report.update_summary.as_ref().map(|s| s.p99),
            threads: outcome.run.threads,
        };
        println!(
            "    {:>7} | {:>9} | {:>7.1}% | {:>7.1} | {}",
            row.threads,
            row.confirmed,
            row.delivery * 100.0,
            row.p99_ms.unwrap_or(f64::NAN),
            if row.safety { "OK" } else { "BROKEN" }
        );
        sweep.push(row);
    }

    let Some(path) = json_out else { return };
    let fmt_row = |r: &Row| {
        format!(
            "{{\"substrate\":\"{}\",\"interval_ms\":{},\"offered_per_s\":{},\
             \"updates_sent\":{},\"updates_confirmed\":{},\"delivery_ratio\":{},\
             \"safety_ok\":{},\"wall_s\":{},\"confirmed_per_wall_s\":{},\
             \"p99_ms\":{},\"threads\":{}}}",
            r.substrate,
            r.interval_ms,
            r.offered,
            r.sent,
            r.confirmed,
            r.delivery,
            r.safety,
            r.wall_s,
            r.rate,
            r.p99_ms
                .map(|v| v.to_string())
                .unwrap_or_else(|| "null".to_string()),
            r.threads
        )
    };
    let json_rows: Vec<String> = rows.iter().map(fmt_row).collect();
    let sweep_rows: Vec<String> = sweep.iter().map(fmt_row).collect();
    let json = format!(
        "{{\"experiment\":\"rt_throughput\",\"schema_version\":{},\
         \"git_rev\":{:?},\"replicas\":6,\"f\":1,\"k\":1,\
         \"rtus\":10,\"point_secs\":{point_secs},\"cores\":{cores},\
         \"peak_sim_confirmed_per_wall_s\":{sim_peak},\
         \"peak_rt_confirmed_per_wall_s\":{rt_peak},\
         \"rt_over_sim\":{},\"rows\":[{}],\
         \"worker_sweep\":[{}]}}\n",
        spire::report::REPORT_SCHEMA_VERSION,
        crate::git_rev(),
        rt_peak / sim_peak.max(1e-9),
        json_rows.join(","),
        sweep_rows.join(",")
    );
    match std::fs::write(path, json) {
        Ok(()) => println!("rt throughput results -> {path}"),
        Err(e) => eprintln!("failed to write {path}: {e}"),
    }
}

/// SHARD — multi-group scaling: aggregate confirmed-updates/s for 1, 2
/// and 4 Prime groups under a **fixed** total offered load with the WAN
/// bandwidth capped, plus cross-shard 2PC legs (10% mix, poisoned
/// aborts, coordinator chaos) proving atomicity holds while intra-shard
/// throughput scales.
///
/// A single group funnels every update through one set of six replicas,
/// so the replicas' modeled per-message CPU time (signature checks,
/// ordering work — the ceiling the paper measures on real hosts) is
/// what saturates: confirmed throughput flattens at the CPU's service
/// rate while queueing shows up as latency, never loss. Sharding splits
/// the ordering work across independent groups — the aggregate
/// confirmed rate climbs back toward the offered load. `smoke` runs the
/// reduced CI matrix (2 groups, short legs, sim + rt) and the full mode
/// demands the >= 3x scaling from 1 -> 4 groups. Returns overall
/// success; writes `BENCH_PR9.json`-style rows to `json_out`.
///
/// (A WAN bandwidth cap is *not* a usable ceiling here: the overlay's
/// hop-by-hop retransmission turns any sustained link overload into a
/// congestion-collapse spiral — RTOs cap at 2 s, so multi-second queues
/// multiply traffic without bound and goodput falls off a cliff instead
/// of flattening. `SPIRE_SHARD_BW` still applies one for exploration.)
pub fn shard_scaling(point_secs: u64, smoke: bool, json_out: Option<&str>) -> bool {
    use spire::sharded::{ShardedConfig, ShardedDeployment};

    // Fixed offered load for the scaling sweep; the replica CPU model is
    // tuned so one group saturates well below it but four groups, each
    // ordering a quarter of the updates, clear it.
    let total_rtus: u32 = crate::env_u64("SPIRE_SHARD_RTUS", if smoke { 24 } else { 40 }) as u32;
    let interval = Span::millis(100);
    let offered_per_s = total_rtus as u64 * 1000 / 100;
    // Calibrated so one group saturates far below the 400/s offered load
    // while four groups clear ~95% of it (sim is deterministic, so the
    // sweep reproduces exactly). The smoke matrix only runs 1 -> 2
    // groups at a lighter load, so it uses a lighter per-message cost
    // that leaves the 2-group point comfortably under capacity.
    let cpu_us = crate::env_u64("SPIRE_SHARD_CPU_US", if smoke { 500 } else { 800 });
    let wan_bps = std::env::var("SPIRE_SHARD_BW")
        .ok()
        .and_then(|v| v.parse::<u64>().ok());
    let sweep: &[u32] = if smoke { &[1, 2] } else { &[1, 2, 4] };

    #[derive(Clone)]
    struct Row {
        substrate: &'static str,
        shards: u32,
        cross_rate: f64,
        chaos: bool,
        report: spire::Report,
        run_s: f64,
    }
    let mut rows: Vec<Row> = Vec::new();
    let mut ok = true;

    header(
        &format!(
            "SHARD: aggregate throughput vs group count \
             ({total_rtus} RTUs, {offered_per_s}/s offered, {cpu_us} us replica CPU per message)"
        ),
        "  groups | confirmed |  rate/s | delivery |  p99_ms | safety",
    );
    let scaling_cfg = |shards: u32, seed: u64| {
        let mut cfg = ShardedConfig::wide_area(shards, seed);
        cfg.base.workload = WorkloadConfig {
            rtus: total_rtus,
            update_interval: interval,
            hmis: 1,
            ..Default::default()
        };
        cfg.base.replica_service_us = Some(cpu_us);
        if let Some(bps) = wan_bps {
            // Exploration-only WAN cap; deep router buffers keep the
            // saturated configurations from tail-dropping their own
            // ordering frames into a zero-throughput collapse.
            cfg.base.wan_bandwidth_bps = Some(bps);
            cfg.base.wan_max_queue_ms = Some(10_000);
        }
        cfg
    };
    let mut rates: Vec<(u32, f64)> = Vec::new();
    for &shards in sweep {
        let mut system = ShardedDeployment::build(scaling_cfg(shards, 900 + shards as u64));
        system.install_invariant_checker(Span::secs(1), secs(point_secs));
        system.run_for(Span::secs(point_secs));
        let report = system.report();
        let rate = report.updates_confirmed as f64 / point_secs as f64;
        println!(
            "  {shards:>6} | {:>9} | {:>7.1} | {:>7.1}% | {:>7.1} | {}",
            report.updates_confirmed,
            rate,
            report.delivery_ratio() * 100.0,
            report.update_summary.as_ref().map_or(f64::NAN, |s| s.p99),
            if report.safety_ok { "OK" } else { "BROKEN" },
        );
        ok &= report.safety_ok;
        rates.push((shards, rate));
        rows.push(Row {
            substrate: "sim",
            shards,
            cross_rate: 0.0,
            chaos: false,
            report,
            run_s: point_secs as f64,
        });
    }
    let rate_of = |n: u32| {
        rates
            .iter()
            .find(|(s, _)| *s == n)
            .map(|(_, r)| *r)
            .unwrap_or(f64::NAN)
    };
    let scaling = rate_of(*sweep.last().unwrap()) / rate_of(1).max(1e-9);
    println!(
        "  scaling 1 -> {} groups: {scaling:.2}x (offered {offered_per_s}/s)",
        sweep.last().unwrap()
    );
    // The top sweep point must actually clear its offered load; without
    // this, a WAN cap savage enough to kill *every* configuration would
    // make the scaling ratio degenerate (0 -> epsilon) and pass trivially.
    let top_delivery = rows
        .last()
        .map(|r| r.report.delivery_ratio())
        .unwrap_or(0.0);
    if top_delivery < 0.9 {
        println!(
            "  FAIL: {}-group delivery {:.1}% — the cap drowned every configuration",
            sweep.last().unwrap(),
            top_delivery * 100.0
        );
        ok = false;
    }
    if smoke {
        // CI gate: adding a group must never cost aggregate throughput.
        if rate_of(2) < rate_of(1) {
            println!("  FAIL: 2-group aggregate below the single-group baseline");
            ok = false;
        }
    } else if scaling < 3.0 {
        println!("  FAIL: expected >= 3x scaling from 1 -> 4 groups, got {scaling:.2}x");
        ok = false;
    }

    // Cross-shard legs: uncapped WAN, moderate per-shard load, 10% of
    // supervisory commands spanning two groups (plus a poisoned-abort
    // variant and a coordinator-chaos variant). Atomicity must hold in
    // all three; the chaos window must actually force retries.
    let xshard_secs = if smoke { 30 } else { 60 };
    let x_groups: u32 = if smoke { 2 } else { 4 };
    header(
        &format!("SHARD: cross-shard 2PC legs ({x_groups} groups, 10% mix, {xshard_secs}s)"),
        "  leg            | commands | committed | aborted | retries | commit p50/p99 ms | atomic",
    );
    let xshard_cfg = |seed: u64, poison_every: u64, cross_rate: f64| {
        let mut cfg = ShardedConfig::wide_area(x_groups, seed);
        cfg.base.workload = WorkloadConfig {
            rtus: 4 * x_groups,
            update_interval: Span::millis(500),
            hmis: 1,
            command_interval: Span::secs(5),
            ..Default::default()
        };
        cfg.cross_rate = cross_rate;
        cfg.poison_every = poison_every;
        cfg
    };
    // The smoke window is short enough that at a 10% mix the poisoned
    // leg may never reach its every-3rd command; make every command
    // cross-shard and poison every other one so both the abort and the
    // commit path are exercised deterministically.
    let (poison_nth, poison_cross) = if smoke { (2, 1.0) } else { (3, 0.1) };
    for (leg, poison_every, chaos, cross_rate) in [
        ("mix", 0u64, false, 0.1),
        ("poisoned", poison_nth, false, poison_cross),
        ("chaos", 0, true, 0.1),
    ] {
        let mut system =
            ShardedDeployment::build(xshard_cfg(1200 + poison_every, poison_every, cross_rate));
        if chaos {
            system.schedule_coordinator_chaos(
                secs(xshard_secs / 4),
                secs(3 * xshard_secs / 4),
                0.75,
                0.3,
            );
        }
        system.install_invariant_checker(Span::secs(1), secs(xshard_secs));
        system.run_for(Span::secs(xshard_secs));
        let report = system.report();
        let atomic = system.ledger.violation_count() == 0
            && report.chaos.invariant_violations == 0
            && report.safety_ok;
        println!(
            "  {leg:<14} | {:>8} | {:>9} | {:>7} | {:>7} | {:>8.1}/{:<8.1} | {}",
            report.xshard.commands,
            report.xshard.committed,
            report.xshard.aborted,
            report.xshard.retries,
            report.xshard.commit_p50_ms,
            report.xshard.commit_p99_ms,
            if atomic { "OK" } else { "VIOLATED" },
        );
        ok &= atomic && report.xshard.committed > 0;
        if leg == "poisoned" && report.xshard.aborted == 0 {
            println!("  FAIL: poisoned leg never exercised the abort path");
            ok = false;
        }
        rows.push(Row {
            substrate: "sim",
            shards: x_groups,
            cross_rate,
            chaos,
            report,
            run_s: xshard_secs as f64,
        });
    }

    // rt leg: the same sharded system (2 groups, 10% mix) hosted on the
    // real-clock runtime — wall time, so keep it short.
    let rt_secs = if smoke { 6 } else { 10 };
    println!("\nSHARD: rt substrate leg (2 groups, 10% mix, {rt_secs}s wall time)");
    let outcome = {
        let mut cfg = ShardedConfig::wide_area(2, 1300);
        cfg.base.workload = WorkloadConfig {
            rtus: 8,
            update_interval: Span::millis(250),
            hmis: 1,
            command_interval: Span::secs(2),
            ..Default::default()
        };
        cfg.cross_rate = 0.1;
        ShardedDeployment::build(cfg)
            .into_rt(0)
            .run_for(Span::secs(rt_secs))
    };
    let rt_ok = outcome.report.safety_ok
        && outcome.report.chaos.invariant_violations == 0
        && outcome.report.delivery_ratio() > 0.9
        && outcome.report.updates_confirmed > 0;
    println!(
        "  rt: {}/{} confirmed ({:.1}%), xshard {} committed / {} aborted, safety {}",
        outcome.report.updates_confirmed,
        outcome.report.updates_sent,
        outcome.report.delivery_ratio() * 100.0,
        outcome.report.xshard.committed,
        outcome.report.xshard.aborted,
        if rt_ok { "OK" } else { "BROKEN" },
    );
    ok &= rt_ok;
    rows.push(Row {
        substrate: "rt",
        shards: 2,
        cross_rate: 0.1,
        chaos: false,
        report: outcome.report,
        run_s: rt_secs as f64,
    });

    println!(
        "\nshard scaling: {} (scaling {scaling:.2}x, {} legs)",
        if ok { "PASS" } else { "FAIL" },
        rows.len()
    );

    let Some(path) = json_out else { return ok };
    let fmt_row = |r: &Row| {
        let rep = &r.report;
        format!(
            "{{\"substrate\":\"{}\",\"shards\":{},\"cross_rate\":{},\"chaos\":{},\
             \"run_s\":{},\"updates_sent\":{},\"updates_confirmed\":{},\
             \"delivery_ratio\":{},\"confirmed_per_s\":{},\"p99_ms\":{},\
             \"safety_ok\":{},\"invariant_violations\":{},\
             \"xshard\":{{\"commands\":{},\"committed\":{},\"aborted\":{},\"retries\":{},\
             \"commit_p50_ms\":{},\"commit_p99_ms\":{}}},\
             \"per_shard\":[{}]}}",
            r.substrate,
            r.shards,
            r.cross_rate,
            r.chaos,
            r.run_s,
            rep.updates_sent,
            rep.updates_confirmed,
            rep.delivery_ratio(),
            rep.updates_confirmed as f64 / r.run_s.max(1e-9),
            rep.update_summary
                .as_ref()
                .map(|s| s.p99.to_string())
                .unwrap_or_else(|| "null".to_string()),
            rep.safety_ok,
            rep.chaos.invariant_violations,
            rep.xshard.commands,
            rep.xshard.committed,
            rep.xshard.aborted,
            rep.xshard.retries,
            finite_or_null(rep.xshard.commit_p50_ms),
            finite_or_null(rep.xshard.commit_p99_ms),
            rep.shards
                .iter()
                .map(|s| format!(
                    "{{\"shard\":{},\"sent\":{},\"confirmed\":{},\"p50_ms\":{},\"p99_ms\":{}}}",
                    s.shard,
                    s.sent,
                    s.confirmed,
                    finite_or_null(s.p50_ms),
                    finite_or_null(s.p99_ms),
                ))
                .collect::<Vec<_>>()
                .join(","),
        )
    };
    let json = format!(
        "{{\"experiment\":\"shard_scaling\",\"schema_version\":{},\
         \"git_rev\":{:?},\"smoke\":{smoke},\"point_secs\":{point_secs},\
         \"cores\":{},\"total_rtus\":{total_rtus},\"offered_per_s\":{offered_per_s},\
         \"replica_service_us\":{cpu_us},\"scaling\":{scaling},\"pass\":{ok},\
         \"rows\":[{}]}}\n",
        spire::report::REPORT_SCHEMA_VERSION,
        crate::git_rev(),
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        rows.iter().map(fmt_row).collect::<Vec<_>>().join(","),
    );
    match std::fs::write(path, json) {
        Ok(()) => println!("shard scaling results -> {path}"),
        Err(e) => eprintln!("failed to write {path}: {e}"),
    }
    ok
}

fn finite_or_null(v: f64) -> String {
    if v.is_finite() {
        v.to_string()
    } else {
        "null".to_string()
    }
}

/// Convenience wrapper used by `cargo bench` and the all-experiments bin.
pub fn run_all(scale: u64) {
    t1_configurations();
    let _ = t2_longrun(120 * scale);
    rt_throughput(2, None);
    f1_latency_cdf(60 * scale);
    f2_recovery_timeline(100 * scale, 20);
    f3_network_attack(80 * scale);
    f4_throughput(30 * scale);
    f5_leader_attack(40 * scale);
    f6_overlay_resilience(100);
    a1_fairness(100);
    a2_dual_homing(60);
    a3_amortized_auth(15 * scale);
    t3_red_team();
    f6_chaos(&[1, 2, 3, 4], 30 * scale);
    let _ = fmt_summary(&None);
}

/// ENDURANCE — bounded-memory soak: a wide-area deployment runs for
/// `duration_s` simulated seconds with the rolling proactive-recovery
/// rotation (one replica every ~30 s) and *network-only* chaos — site
/// DoS, site disconnects and wire-fault windows that drop/corrupt the
/// state-transfer share traffic — while every replica crash slot is
/// owned by the rotation itself. Asserts the three endurance claims:
///
/// 1. **log-size plateau** — per-replica retained PO-log size
///    (`prime.compaction.po_retained`) in the final window stays within
///    `SPIRE_ENDURANCE_PLATEAU` (default 1.2x) of the window right
///    after the first compaction, i.e. compaction keeps memory bounded;
/// 2. **0 invariant violations** (and the cross-replica safety check);
/// 3. **>= 95% delivery excluding recovery windows** — confirmed
///    updates outside announced `(replica, start, end)` windows vs the
///    offered load over those same seconds.
///
/// Every scheduled recovery must also complete (chunk retry/backoff
/// defeats the loss windows). Writes a `BENCH_PR10.json`-style summary
/// to `json_out`. Runs on either substrate (rt takes `duration_s` in
/// wall time — keep it short there). Returns overall success.
pub fn endurance(duration_s: u64, substrate: Substrate, json_out: Option<&str>) -> bool {
    use spire::deployment::RollingRecoveryConfig;
    use spire::{ChaosPlan, HealthConfig};

    let seed = crate::env_u64("SPIRE_ENDURANCE_SEED", 1804);
    let period_s = crate::env_u64("SPIRE_ENDURANCE_PERIOD", 30);
    let window_s = crate::env_u64("SPIRE_ENDURANCE_WINDOW", 10);
    let plateau_limit = std::env::var("SPIRE_ENDURANCE_PLATEAU")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or(1.2);

    let rtus = 10u32;
    let interval = Span::secs(1);
    let mut cfg = DeploymentConfig::wide_area(seed);
    cfg.workload = WorkloadConfig {
        rtus,
        update_interval: interval,
        hmis: 1,
        command_interval: Span::secs(30),
        ..Default::default()
    };
    let duration = Span::secs(duration_s);

    // Network chaos only: the rotation owns the whole f + k replica
    // fault budget, while the wire still drops and corrupts the share
    // traffic the recovering replica depends on.
    let plan = ChaosPlan::generate(seed, &cfg.spire, duration).network_only();
    let scenario = plan.scenario();

    let mut system = Deployment::build(cfg);
    // Rolling rotation must be announced before `apply` installs the
    // invariant checker (it captures the windows for the catch-up
    // deadline check). Stop scheduling early enough that the last
    // window can close before the horizon.
    //
    // The rotation respects the same fault budget the chaos accountant
    // enforces: a site DoS/disconnection plus a recovering replica
    // exceeds `f + k` for the 6-replica layout (4-of-6 quorum), so each
    // round slides forward past any conflicting site-attack span. Wire
    // faults are *not* avoided — recovering through corrupted and
    // duplicated share traffic is the point of the soak.
    let mut busy: Vec<(Time, Time)> = plan
        .attacks
        .iter()
        .filter_map(|a| match a {
            spire::Attack::DosSite { from, until, .. }
            | spire::Attack::DisconnectSite { from, until, .. } => Some((*from, *until)),
            _ => None,
        })
        .collect();
    busy.sort();
    let margin = Span::secs(3);
    let window = Span::secs(window_s);
    let sched_horizon = Time(duration_s.saturating_sub(window_s + 5) * 1_000_000);
    let rcfg = RollingRecoveryConfig {
        period: Span::secs(period_s),
        window,
        ..RollingRecoveryConfig::default()
    };
    let mut windows = Vec::new();
    let mut last_end = Time(0);
    let mut round_at = secs(period_s);
    while round_at <= sched_horizon {
        // Never overlap the previous (possibly slid) window either:
        // two concurrent recoveries would exceed k = 1.
        let mut at = round_at.max(last_end);
        let scheduled = loop {
            let conflict = busy.iter().find(|(s, e)| {
                let lo = Time(at.0.saturating_sub(margin.0));
                let hi = at + window + margin;
                *s < hi && lo < *e
            });
            match conflict {
                None => break true,
                Some((_, e)) if *e + margin <= sched_horizon => at = *e + margin,
                Some(_) => break false, // conflict runs past the horizon
            }
        };
        if scheduled {
            windows.extend(system.schedule_rolling_recovery(at, at, rcfg));
            last_end = at + window + margin;
        }
        round_at = round_at + rcfg.period;
    }
    scenario.apply(&mut system);

    header(
        &format!(
            "ENDURANCE: {duration_s} s soak, recovery every {period_s} s, \
             network chaos seed {seed}, on {substrate}"
        ),
        "metric                           value",
    );
    for line in &plan.log {
        println!("  chaos: {line}");
    }

    let (report, po_series): (spire::Report, Vec<(Time, f64)>) = match substrate {
        Substrate::Sim => {
            system.install_health_monitor(HealthConfig::default(), secs(duration_s));
            // SPIRE_ENDURANCE_DEBUG=1 prints a per-minute ordering-health
            // probe to stderr — enough to localize a liveness wedge to the
            // execution, commit, or pre-order layer without a debugger.
            if std::env::var_os("SPIRE_ENDURANCE_DEBUG").is_some() {
                let insp = system.inspection.clone();
                for m in 1..=duration_s / 60 {
                    let insp = insp.clone();
                    system
                        .world
                        .schedule_control(Time(m * 60_000_000), move |w| {
                            let records = insp.records();
                            let execs: Vec<u64> =
                                records.values().map(|r| r.last_executed).collect();
                            let arus: Vec<u64> = records.values().map(|r| r.commit_aru).collect();
                            let miss: Vec<u64> = records.values().map(|r| r.missing_po).collect();
                            let metrics = w.metrics();
                            eprintln!(
                                "t={}s confirmed={} execs={execs:?} arus={arus:?} miss={miss:?} \
                             po_retries={} vc_rebroadcasts={}",
                                m * 60,
                                metrics.counter("scada.updates_confirmed"),
                                metrics.counter("prime.po_retries"),
                                metrics.counter("prime.vc_rebroadcasts"),
                            );
                        });
                }
            }
            system.run_for(duration);
            let po = system
                .world
                .metrics()
                .series("prime.compaction.po_retained")
                .to_vec();
            (system.report(), po)
        }
        Substrate::Rt { threads } => {
            let outcome = system
                .into_rt(threads)
                .run_monitored(duration, spire::deployment::HealthOptions::default());
            let po = outcome
                .run
                .metrics
                .series("prime.compaction.po_retained")
                .to_vec();
            (outcome.report, po)
        }
    };

    // Delivery excluding recovery windows: count whole seconds whose
    // midpoint lies outside every announced window, and the confirmed
    // updates stamped in those seconds, against the offered rate.
    let in_window = |t: Time| windows.iter().any(|(_, s, e)| *s <= t && t < *e);
    let mut secs_outside = 0u64;
    for s in 0..duration_s {
        if !in_window(Time(s * 1_000_000 + 500_000)) {
            secs_outside += 1;
        }
    }
    let confirmed_outside = report
        .update_timeline
        .iter()
        .filter(|(t, _)| !in_window(*t))
        .count() as u64;
    let offered_per_s = rtus as u64 * 1_000_000 / interval.0;
    let expected_outside = (offered_per_s * secs_outside).max(1);
    let delivery_excl = confirmed_outside as f64 / expected_outside as f64;

    // Log-size plateau: max retained PO-log size across replicas in the
    // window right after the first compaction vs the final window.
    let plateau_window_us = (duration_s / 4).clamp(10, 60) * 1_000_000;
    let max_in = |lo: u64, hi: u64| {
        po_series
            .iter()
            .filter(|(t, _)| t.0 >= lo && t.0 < hi)
            .map(|(_, v)| *v)
            .fold(f64::NAN, f64::max)
    };
    let (early_max, final_max) = match po_series.first() {
        Some(&(t0, _)) => (
            max_in(t0.0, t0.0 + plateau_window_us),
            max_in(duration.0.saturating_sub(plateau_window_us), duration.0 + 1),
        ),
        None => (f64::NAN, f64::NAN),
    };
    let plateau_ratio = final_max / early_max;
    // The ratio test catches unbounded growth; below an absolute floor it
    // only measures noise (a handful of in-flight entries around attack
    // windows), so a final size that is trivially bounded passes outright.
    // A real leak compounds over the soak and blows far past the floor.
    let plateau_floor = crate::env_u64("SPIRE_ENDURANCE_PLATEAU_FLOOR", 150) as f64;
    let plateau_ok =
        final_max <= plateau_floor || (plateau_ratio.is_finite() && plateau_ratio <= plateau_limit);

    let rec = &report.recovery;
    let rotations = windows.len() as u64;
    let invariants_ok = report.safety_ok && report.chaos.invariant_violations == 0;
    let recoveries_ok = rotations >= 2 && rec.started >= rotations && rec.completed >= rec.started;
    let delivery_ok = delivery_excl >= 0.95;

    println!("rotations scheduled              {rotations}");
    println!(
        "recoveries                       {} started / {} completed",
        rec.started, rec.completed
    );
    println!(
        "state transfer                   {} chunks, {} retry rounds, p50 {:.1} ms, p99 {:.1} ms",
        rec.chunks, rec.chunk_retries, rec.duration_p50_ms, rec.duration_p99_ms
    );
    println!(
        "compaction                       {} runs, {} entries evicted",
        rec.compaction_runs, rec.compaction_evicted
    );
    println!(
        "po retained (early/final max)    {early_max:.0} / {final_max:.0} \
         -> ratio {plateau_ratio:.3} (limit {plateau_limit}) {}",
        if plateau_ok { "OK" } else { "GREW" }
    );
    println!(
        "delivery overall                 {:.2} %",
        report.delivery_ratio() * 100.0
    );
    println!(
        "delivery excl. recovery windows  {:.2} % ({confirmed_outside}/{expected_outside}) {}",
        delivery_excl * 100.0,
        if delivery_ok { "OK" } else { "LOW" }
    );
    // Per-minute confirmed counts: the soak's availability timeline.
    let minutes = duration_s / 60;
    if minutes >= 2 {
        let per_min: Vec<String> = (0..minutes)
            .map(|m| {
                let lo = m * 60_000_000;
                let hi = lo + 60_000_000;
                let n = report
                    .update_timeline
                    .iter()
                    .filter(|(t, _)| t.0 >= lo && t.0 < hi)
                    .count();
                format!("{n}")
            })
            .collect();
        println!("confirmed per minute             [{}]", per_min.join(", "));
    }
    println!(
        "invariants                       {} checks, {} violations; safety {}",
        report.chaos.invariant_checks,
        report.chaos.invariant_violations,
        if report.safety_ok { "OK" } else { "VIOLATED" }
    );
    println!(
        "health                           {} degraded windows, {} breaches",
        report.health.degraded_windows,
        report.health.breaches()
    );

    let ok = invariants_ok && plateau_ok && delivery_ok && recoveries_ok;
    println!(
        "endurance verdict                {}",
        if ok { "PASS" } else { "FAIL" }
    );

    if let Some(path) = json_out {
        let json = format!(
            "{{\"experiment\":\"endurance\",\"schema_version\":{},\
             \"git_rev\":{:?},\"substrate\":\"{substrate}\",\
             \"duration_s\":{duration_s},\"period_s\":{period_s},\
             \"window_s\":{window_s},\"chaos_seed\":{seed},\
             \"rotations\":{rotations},\
             \"recoveries_started\":{},\"recoveries_completed\":{},\
             \"recovery_chunks\":{},\"chunk_retries\":{},\
             \"recovery_p50_ms\":{},\"recovery_p99_ms\":{},\
             \"accums_evicted\":{},\
             \"compaction_runs\":{},\"compaction_evicted\":{},\
             \"po_retained_early_max\":{},\"po_retained_final_max\":{},\
             \"plateau_ratio\":{},\"plateau_limit\":{plateau_limit},\
             \"plateau_floor\":{plateau_floor},\
             \"delivery_overall\":{},\"delivery_excl_recovery\":{},\
             \"invariant_checks\":{},\"invariant_violations\":{},\
             \"degraded_windows\":{},\"safety_ok\":{},\"ok\":{ok}}}\n",
            spire::report::REPORT_SCHEMA_VERSION,
            crate::git_rev(),
            rec.started,
            rec.completed,
            rec.chunks,
            rec.chunk_retries,
            finite_or_null(rec.duration_p50_ms),
            finite_or_null(rec.duration_p99_ms),
            rec.accums_evicted,
            rec.compaction_runs,
            rec.compaction_evicted,
            finite_or_null(early_max),
            finite_or_null(final_max),
            finite_or_null(plateau_ratio),
            finite_or_null(report.delivery_ratio()),
            finite_or_null(delivery_excl),
            report.chaos.invariant_checks,
            report.chaos.invariant_violations,
            report.health.degraded_windows,
            report.safety_ok,
        );
        match std::fs::write(path, json) {
            Ok(()) => println!("endurance results -> {path}"),
            Err(e) => eprintln!("failed to write {path}: {e}"),
        }
    }
    trace_hooks_maybe(&report);
    ok
}

// The endurance soak consumes `system` on the rt path, so the usual
// `trace_hooks(&system, ...)` handle is gone by reporting time; phase
// tables still print when tracing captured spans.
fn trace_hooks_maybe(report: &spire::Report) {
    let table = report.phase_table();
    if !table.is_empty() {
        println!("\nper-phase latency breakdown (endurance):\n{table}");
    }
}
