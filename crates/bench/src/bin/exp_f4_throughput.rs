//! F4: latency vs offered load sweep. SPIRE_F4_SECS scales each point.
fn main() {
    let secs = spire_bench::env_u64("SPIRE_F4_SECS", 60);
    spire_bench::experiments::f4_throughput(secs);
}
