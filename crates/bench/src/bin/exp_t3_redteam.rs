//! T3: the red-team scenario matrix.
fn main() {
    spire_bench::experiments::t3_red_team();
}
