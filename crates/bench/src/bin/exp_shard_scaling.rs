//! SHARD: multi-group scaling sweep plus cross-shard 2PC legs.
//! `--smoke` runs the reduced CI matrix (2 groups, sim + rt, short legs);
//! the full run demands >= 3x aggregate scaling from 1 -> 4 groups.
//! SPIRE_SHARD_SECS scales the sweep legs; SPIRE_SHARD_JSON overrides the
//! JSON output path; SPIRE_SHARD_CPU_US overrides the modeled per-message
//! replica CPU time (the saturation ceiling); SPIRE_SHARD_RTUS the total
//! offered load; SPIRE_SHARD_BW applies an exploratory WAN bandwidth cap.
fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let secs = spire_bench::env_u64("SPIRE_SHARD_SECS", if smoke { 20 } else { 30 });
    let path = std::env::var("SPIRE_SHARD_JSON").unwrap_or_else(|_| "BENCH_PR9.json".to_string());
    if !spire_bench::experiments::shard_scaling(secs, smoke, Some(&path)) {
        std::process::exit(1);
    }
}
