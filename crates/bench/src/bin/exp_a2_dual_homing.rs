//! Ablation: dual-homed vs single-homed substations under CC loss.
fn main() {
    let secs = spire_bench::env_u64("SPIRE_A2_SECS", 90);
    spire_bench::experiments::a2_dual_homing(secs);
}
