//! ENDURANCE: bounded-memory soak — >=10 simulated minutes of rolling
//! proactive recovery (one replica every ~30 s) under network-only
//! chaos, asserting the retained-log plateau, zero invariant
//! violations and >= 95% delivery outside recovery windows. Scale with
//! SPIRE_ENDURANCE_SECS (default 600 simulated s); pick the substrate
//! with SPIRE_ENDURANCE_SUBSTRATE=sim|rt|rt:N (rt runs in wall time —
//! keep it short); the JSON summary lands in SPIRE_ENDURANCE_JSON
//! (default BENCH_PR10.json).
use spire::deployment::Substrate;

fn main() {
    let secs = spire_bench::env_u64("SPIRE_ENDURANCE_SECS", 600);
    let substrate = match std::env::var("SPIRE_ENDURANCE_SUBSTRATE") {
        Ok(s) => Substrate::parse(&s).unwrap_or_else(|| {
            eprintln!("bad SPIRE_ENDURANCE_SUBSTRATE {s:?}: expected sim, rt or rt:N");
            std::process::exit(2);
        }),
        Err(_) => Substrate::Sim,
    };
    let path =
        std::env::var("SPIRE_ENDURANCE_JSON").unwrap_or_else(|_| "BENCH_PR10.json".to_string());
    if !spire_bench::experiments::endurance(secs, substrate, Some(&path)) {
        std::process::exit(1);
    }
}
