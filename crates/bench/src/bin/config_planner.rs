//! Operator tool: prints valid Spire replica placements for a requested
//! tolerance level.
//!
//! Usage: `config_planner [f] [k] [data_centers]` (defaults 1 1 2).

use spire::{required_replicas, SpireConfig};

fn main() {
    let args: Vec<u32> = std::env::args()
        .skip(1)
        .filter_map(|a| a.parse().ok())
        .collect();
    let f = args.first().copied().unwrap_or(1);
    let k = args.get(1).copied().unwrap_or(1);
    let dcs = args.get(2).copied().unwrap_or(2);
    println!("tolerance target: f={f} intrusions, k={k} concurrent recoveries");
    println!("minimum replicas (3f+2k+1): {}", required_replicas(f, k));
    let cfg = SpireConfig::spread(f, k, dcs);
    println!("\nplacement over 2 control centers + {dcs} data centers:");
    for (i, site) in cfg.sites.iter().enumerate() {
        println!(
            "  {} ({:?}): replicas {:?}",
            site.name,
            site.kind,
            cfg.replicas_of_site(i)
        );
    }
    match cfg.validate(true) {
        Ok(()) => println!("\nconfiguration tolerates the loss of any single site."),
        Err(e) => {
            println!("\nNOT site-loss tolerant: {e}");
            for sites in 2..=8 {
                if let Some(n) = SpireConfig::min_replicas_site_tolerant(f, k, sites) {
                    println!("  -> {n} replicas over {sites} sites would be");
                    break;
                }
            }
        }
    }
}
