//! F5: leader performance attack sweep, Prime vs PBFT-like.
fn main() {
    let secs = spire_bench::env_u64("SPIRE_F5_SECS", 60);
    spire_bench::experiments::f5_leader_attack(secs);
}
