//! Runs every table and figure experiment in sequence (scaled by
//! SPIRE_SCALE, default 1).
fn main() {
    let scale = spire_bench::env_u64("SPIRE_SCALE", 1);
    spire_bench::experiments::run_all(scale);
}
