//! F6: overlay dissemination resilience vs daemon failures.
fn main() {
    let msgs = spire_bench::env_u64("SPIRE_F6_MSGS", 200) as u32;
    spire_bench::experiments::f6_overlay_resilience(msgs);
}
