//! Schedule exploration driver over the Prime model seam
//! (`spire-explore`): bounded exhaustive interleaving, seeded randomized
//! adversarial exploration, and deterministic replay of failure
//! artifacts.
//!
//! Usage:
//!   `exp_x1_explore --exhaustive [--scenario=NAME] [--ops=N]`
//!   `              [--depth=D] [--max-states=S] [--min-states=S]`
//!   `exp_x1_explore --random [--scenario=NAME] [--ops=N] [--seed=S]`
//!   `              [--secs=S | --episodes=N] [--steps=N] [--rounds=R]`
//!   `              [--artifact=PATH] [--expect-violation]`
//!   `              [--max-shrunk=N]`
//!   `exp_x1_explore --replay=PATH [--expect-violation]`
//!
//! * `--scenario` — behavior assignment: `honest`, `equivocating-leader`,
//!   `leader-delay`, `mute-replica`, `po-equivocation` (f=1, k=0,
//!   n=4 throughout), or `xshard-commit` (cross-shard 2PC over two model
//!   groups; `--random` and `--replay` only, with `--ops` transactions);
//! * `--min-states` — exhaustive mode exits 1 unless at least this many
//!   distinct states were visited (CI coverage floor);
//! * `--expect-violation` — invert the verdict: exit 1 unless a
//!   violation was found (random mode hunts + shrinks it first) or, for
//!   `--replay`, unless the artifact still reproduces one;
//! * `--artifact` — where random mode writes the shrunk replay artifact
//!   when a violation is found (also written on unexpected violations, so
//!   CI can upload it);
//! * `--max-shrunk` — with `--expect-violation`: exit 1 if the shrunk
//!   schedule still exceeds this many events.
//!
//! Replays are deterministic: the artifact pins the scenario and the
//! exact choice sequence, and the model seam leaves no other
//! nondeterminism. An artifact produced under `--features
//! seeded-commit-bug` records that (`"seeded_bug": true`); replay it
//! against a build with the same feature set.

use spire_explore::{
    exhaustive, random, xshard, Artifact, Bounds, Harness, RandomParams, Scenario,
};
use spire_prime::model::SEEDED_BUG_ACTIVE;
use std::time::Duration;

fn fail(msg: &str) -> ! {
    eprintln!("explore FAIL: {msg}");
    std::process::exit(1);
}

#[derive(PartialEq)]
enum Mode {
    Exhaustive,
    Random,
    Replay(String),
}

fn main() {
    let mut mode: Option<Mode> = None;
    let mut scenario = "honest".to_string();
    let mut ops: u32 = 2;
    let mut depth: usize = 14;
    let mut max_states: u64 = 250_000;
    let mut min_states: u64 = 0;
    let mut seed: u64 = 0;
    let mut secs: Option<u64> = None;
    let mut episodes: u64 = 64;
    let mut steps: usize = 600;
    let mut rounds: u64 = 16;
    let mut artifact_path: Option<String> = None;
    let mut expect_violation = false;
    let mut max_shrunk: usize = usize::MAX;
    for arg in std::env::args().skip(1) {
        if arg == "--exhaustive" {
            mode = Some(Mode::Exhaustive);
        } else if arg == "--random" {
            mode = Some(Mode::Random);
        } else if let Some(v) = arg.strip_prefix("--replay=") {
            mode = Some(Mode::Replay(v.to_string()));
        } else if let Some(v) = arg.strip_prefix("--scenario=") {
            scenario = v.to_string();
        } else if let Some(v) = arg.strip_prefix("--ops=") {
            ops = v.parse().unwrap_or_else(|_| fail("bad --ops"));
        } else if let Some(v) = arg.strip_prefix("--depth=") {
            depth = v.parse().unwrap_or_else(|_| fail("bad --depth"));
        } else if let Some(v) = arg.strip_prefix("--max-states=") {
            max_states = v.parse().unwrap_or_else(|_| fail("bad --max-states"));
        } else if let Some(v) = arg.strip_prefix("--min-states=") {
            min_states = v.parse().unwrap_or_else(|_| fail("bad --min-states"));
        } else if let Some(v) = arg.strip_prefix("--seed=") {
            seed = v.parse().unwrap_or_else(|_| fail("bad --seed"));
        } else if let Some(v) = arg.strip_prefix("--secs=") {
            secs = Some(v.parse().unwrap_or_else(|_| fail("bad --secs")));
        } else if let Some(v) = arg.strip_prefix("--episodes=") {
            episodes = v.parse().unwrap_or_else(|_| fail("bad --episodes"));
        } else if let Some(v) = arg.strip_prefix("--steps=") {
            steps = v.parse().unwrap_or_else(|_| fail("bad --steps"));
        } else if let Some(v) = arg.strip_prefix("--rounds=") {
            rounds = v.parse().unwrap_or_else(|_| fail("bad --rounds"));
        } else if let Some(v) = arg.strip_prefix("--artifact=") {
            artifact_path = Some(v.to_string());
        } else if arg == "--expect-violation" {
            expect_violation = true;
        } else if let Some(v) = arg.strip_prefix("--max-shrunk=") {
            max_shrunk = v.parse().unwrap_or_else(|_| fail("bad --max-shrunk"));
        } else {
            fail(&format!("unknown argument {arg}"));
        }
    }
    let Some(mode) = mode else {
        fail("pick a mode: --exhaustive, --random, or --replay=PATH");
    };

    println!(
        "exp_x1_explore: seeded_bug_active={SEEDED_BUG_ACTIVE} \
         seeded_xshard_bug_active={}",
        xshard::SEEDED_XSHARD_BUG_ACTIVE
    );
    if scenario.starts_with("xshard") {
        run_xshard(
            mode,
            &scenario,
            ops,
            seed,
            secs,
            episodes,
            steps,
            rounds,
            &artifact_path,
            expect_violation,
            max_shrunk,
        );
        return;
    }
    // The recovering-replica scenario spends the k budget; everything
    // else explores the tight k = 0 cluster.
    let k = if scenario == "recovering-replica" {
        1
    } else {
        0
    };
    match mode {
        Mode::Exhaustive => {
            let scenario = Scenario::named(&scenario, 1, k, ops).unwrap_or_else(|e| fail(&e));
            let recovery = scenario.name == "recovering-replica";
            let harness = Harness::new(scenario);
            let mut bounds = if recovery {
                Bounds::recovery()
            } else {
                Bounds::tiny()
            };
            bounds.max_depth = depth;
            bounds.max_states = max_states;
            let report = exhaustive::explore(&harness, &bounds);
            println!(
                "exhaustive: scenario={} ops={ops} depth<={depth} states_visited={} \
                 states_deduped={} replays={} deepest={} frontier_exhausted={}",
                harness.scenario.name,
                report.states_visited,
                report.states_deduped,
                report.replays,
                report.deepest,
                report.frontier_exhausted,
            );
            if let Some(violation) = &report.violation {
                println!(
                    "violation: kinds={:?} schedule_len={}",
                    violation.kinds,
                    violation.schedule.len()
                );
                write_artifact(&artifact_path, &harness, 0, violation);
                if !expect_violation {
                    fail("exhaustive exploration found an invariant violation");
                }
                check_shrunk_len(violation.schedule.len(), max_shrunk);
                println!("explore OK (expected violation found)");
                return;
            }
            if expect_violation {
                fail("expected a violation; exhaustive pass was clean");
            }
            if report.states_visited < min_states {
                fail(&format!(
                    "visited {} distinct states, below the --min-states floor {min_states}",
                    report.states_visited
                ));
            }
            println!("explore OK (0 violations)");
        }
        Mode::Random => {
            let scenario = Scenario::named(&scenario, 1, k, ops).unwrap_or_else(|e| fail(&e));
            let harness = Harness::new(scenario);
            let params = RandomParams {
                seed,
                episodes,
                steps_per_episode: steps,
                wall_limit: secs.map(Duration::from_secs),
            };
            if expect_violation {
                let Some(found) = random::hunt(&harness, &params, rounds, max_shrunk.min(1 << 20))
                else {
                    fail("expected a violation; randomized exploration found none");
                };
                println!(
                    "violation: kinds={:?} shrunk_len={}",
                    found.kinds,
                    found.schedule.len()
                );
                write_artifact(&artifact_path, &harness, seed, &found);
                check_shrunk_len(found.schedule.len(), max_shrunk);
                println!("explore OK (expected violation found and shrunk)");
            } else {
                let report = random::explore(&harness, &params);
                println!(
                    "random: scenario={} ops={ops} seed={seed} episodes={} steps={} max_executed={}",
                    harness.scenario.name, report.episodes, report.steps, report.max_executed
                );
                if let Some(found) = &report.violation {
                    let shrunk = spire_explore::shrink::shrink(&harness, &found.schedule);
                    let kinds = spire_explore::shrink::reproduces(&harness, &shrunk)
                        .unwrap_or_else(|| found.kinds.clone());
                    let shrunk = exhaustive::FoundViolation {
                        schedule: shrunk,
                        kinds,
                    };
                    write_artifact(&artifact_path, &harness, seed, &shrunk);
                    fail(&format!(
                        "randomized exploration found an invariant violation: {:?}",
                        shrunk.kinds
                    ));
                }
                println!("explore OK (0 violations)");
            }
        }
        Mode::Replay(path) => {
            let text = std::fs::read_to_string(&path)
                .unwrap_or_else(|e| fail(&format!("cannot read {path}: {e}")));
            let artifact = Artifact::from_json_str(&text).unwrap_or_else(|e| fail(&e));
            if artifact.scenario.starts_with("xshard") {
                replay_xshard(&artifact, expect_violation);
                return;
            }
            if artifact.seeded_bug != SEEDED_BUG_ACTIVE {
                fail(&format!(
                    "artifact was produced with seeded_bug={} but this build has {}; \
                     rebuild with the matching feature set",
                    artifact.seeded_bug, SEEDED_BUG_ACTIVE
                ));
            }
            let scenario =
                Scenario::named(&artifact.scenario, artifact.f, artifact.k, artifact.ops)
                    .unwrap_or_else(|e| fail(&e));
            let harness = Harness::new(scenario);
            let cluster = harness.replay(&artifact.events);
            let kinds = cluster.violation_kinds();
            println!(
                "replay: scenario={} events={} applied={} violations={kinds:?}",
                artifact.scenario,
                artifact.events.len(),
                cluster.steps
            );
            if expect_violation && kinds.is_empty() {
                fail("artifact did not reproduce a violation");
            }
            if !expect_violation && !kinds.is_empty() {
                fail("replay hit an invariant violation");
            }
            println!("replay OK");
        }
    }
}

fn write_artifact(
    path: &Option<String>,
    harness: &Harness,
    seed: u64,
    violation: &exhaustive::FoundViolation,
) {
    let Some(path) = path else {
        return;
    };
    let artifact = Artifact {
        scenario: harness.scenario.name.clone(),
        f: harness.scenario.f,
        k: harness.scenario.k,
        ops: harness.scenario.ops,
        seed,
        seeded_bug: SEEDED_BUG_ACTIVE,
        violations: violation.kinds.clone(),
        events: violation.schedule.clone(),
    };
    std::fs::write(path, artifact.to_json_string())
        .unwrap_or_else(|e| fail(&format!("cannot write {path}: {e}")));
    println!("artifact written: {path}");
}

fn check_shrunk_len(len: usize, max_shrunk: usize) {
    if len > max_shrunk {
        fail(&format!(
            "shrunk schedule has {len} events, above the --max-shrunk bound {max_shrunk}"
        ));
    }
}

/// Cross-shard scenarios: randomized exploration / replay against the
/// `spire_explore::xshard` cluster (exhaustive mode is not supported —
/// the coordinator's timer space makes prefix enumeration useless).
#[allow(clippy::too_many_arguments)]
fn run_xshard(
    mode: Mode,
    scenario: &str,
    ops: u32,
    seed: u64,
    secs: Option<u64>,
    episodes: u64,
    steps: usize,
    rounds: u64,
    artifact_path: &Option<String>,
    expect_violation: bool,
    max_shrunk: usize,
) {
    let harness =
        xshard::XHarness::new(xshard::XScenario::named(scenario, ops).unwrap_or_else(|e| fail(&e)));
    let params = RandomParams {
        seed,
        episodes,
        steps_per_episode: steps,
        wall_limit: secs.map(Duration::from_secs),
    };
    match mode {
        Mode::Exhaustive => fail("xshard scenarios support --random and --replay only"),
        Mode::Replay(path) => {
            let text = std::fs::read_to_string(&path)
                .unwrap_or_else(|e| fail(&format!("cannot read {path}: {e}")));
            let artifact = Artifact::from_json_str(&text).unwrap_or_else(|e| fail(&e));
            replay_xshard(&artifact, expect_violation);
        }
        Mode::Random if expect_violation => {
            let Some(found) = xshard::hunt(&harness, &params, rounds, max_shrunk.min(1 << 20))
            else {
                fail("expected a violation; randomized xshard exploration found none");
            };
            println!(
                "violation: kinds={:?} shrunk_len={}",
                found.kinds,
                found.schedule.len()
            );
            write_xshard_artifact(artifact_path, &harness, seed, &found);
            check_shrunk_len(found.schedule.len(), max_shrunk);
            println!("explore OK (expected violation found and shrunk)");
        }
        Mode::Random => {
            let report = xshard::explore(&harness, &params);
            println!(
                "random: scenario={} ops={ops} seed={seed} episodes={} steps={} completed_txs={}",
                harness.scenario.name, report.episodes, report.steps, report.max_executed
            );
            if let Some(found) = &report.violation {
                let shrunk = xshard::shrink(&harness, &found.schedule);
                let kinds =
                    xshard::reproduces(&harness, &shrunk).unwrap_or_else(|| found.kinds.clone());
                let shrunk = exhaustive::FoundViolation {
                    schedule: shrunk,
                    kinds,
                };
                write_xshard_artifact(artifact_path, &harness, seed, &shrunk);
                fail(&format!(
                    "randomized xshard exploration broke atomicity: {:?}",
                    shrunk.kinds
                ));
            }
            println!("explore OK (0 violations)");
        }
    }
}

fn replay_xshard(artifact: &Artifact, expect_violation: bool) {
    if artifact.seeded_bug != xshard::SEEDED_XSHARD_BUG_ACTIVE {
        fail(&format!(
            "artifact was produced with seeded_bug={} but this build has {}; \
             rebuild with the matching `seeded-xshard-bug` feature set",
            artifact.seeded_bug,
            xshard::SEEDED_XSHARD_BUG_ACTIVE
        ));
    }
    let harness = xshard::XHarness::new(
        xshard::XScenario::named(&artifact.scenario, artifact.ops).unwrap_or_else(|e| fail(&e)),
    );
    let cluster = harness.replay(&artifact.events);
    let kinds = cluster.violation_kinds();
    println!(
        "replay: scenario={} events={} applied={} violations={kinds:?}",
        artifact.scenario,
        artifact.events.len(),
        cluster.steps
    );
    if expect_violation && kinds.is_empty() {
        fail("artifact did not reproduce a violation");
    }
    if !expect_violation && !kinds.is_empty() {
        fail("replay hit an atomicity violation");
    }
    println!("replay OK");
}

fn write_xshard_artifact(
    path: &Option<String>,
    harness: &xshard::XHarness,
    seed: u64,
    violation: &exhaustive::FoundViolation,
) {
    let Some(path) = path else {
        return;
    };
    let artifact = Artifact {
        scenario: harness.scenario.name.clone(),
        f: harness.scenario.f,
        k: 0,
        ops: harness.scenario.ops,
        seed,
        seeded_bug: xshard::SEEDED_XSHARD_BUG_ACTIVE,
        violations: violation.kinds.clone(),
        events: violation.schedule.clone(),
    };
    std::fs::write(path, artifact.to_json_string())
        .unwrap_or_else(|e| fail(&format!("cannot write {path}: {e}")));
    println!("artifact written: {path}");
}
