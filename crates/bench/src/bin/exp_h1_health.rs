//! CI health-smoke driver: runs a short workload with the live health
//! monitor installed, writes the Prometheus export, and turns the
//! monitor's verdicts into an exit code.
//!
//! Usage:
//!   `exp_h1_health [--substrate=sim|rt|rt:N] [--secs=S] [--rate=UPS]`
//!   `              [--attack=none|slow-leader|site-dos] [--sla-ms=MS]`
//!   `              [--prom=PATH] [--assert-clean]`
//!   `              [--assert-alarm=slow-leader|site-dos|partition]`
//!
//! * `--rate` — aggregate update rate (updates/s), realised as `rate/5`
//!   RTUs on a 200 ms update interval;
//! * `--attack` — optionally injects a leader-delay compromise or a
//!   site DoS one third into the run, to prove the detector fires;
//! * `--sla-ms` — latency SLO used for grading (default 400 ms: a CI
//!   smoke threshold wide enough for the rt substrate's real-clock
//!   latency profile, not the paper's 100 ms target);
//! * `--assert-clean` — exit 1 unless the run finished with zero
//!   detector alarms and zero SLO breaches;
//! * `--assert-alarm=KIND` — exit 1 unless that alarm fired.
//!
//! The Prometheus export (when requested) is always re-parsed with the
//! strict parser; a non-parsing export fails the run regardless of the
//! assertion flags.

use spire::attack::{Attack, Scenario};
use spire::deployment::{Deployment, DeploymentConfig, HealthOptions, Substrate};
use spire::health::{parse_prometheus, prometheus_text, AlarmKind, HealthConfig, HealthMonitor};
use spire_prime::ByzBehavior;
use spire_scada::WorkloadConfig;
use spire_sim::{Span, Time};

fn fail(msg: &str) -> ! {
    eprintln!("health-smoke FAIL: {msg}");
    std::process::exit(1);
}

fn main() {
    let mut substrate = Substrate::Sim;
    let mut secs: u64 = 20;
    let mut rate: u64 = 50;
    let mut attack = "none".to_string();
    let mut sla_ms: f64 = 400.0;
    let mut prom_path: Option<String> = None;
    let mut assert_clean = false;
    let mut assert_alarm: Option<AlarmKind> = None;
    for arg in std::env::args().skip(1) {
        if let Some(which) = arg.strip_prefix("--substrate=") {
            let Some(parsed) = Substrate::parse(which) else {
                fail(&format!("bad substrate {which:?}"));
            };
            substrate = parsed;
        } else if let Some(v) = arg.strip_prefix("--secs=") {
            secs = v.parse().unwrap_or_else(|_| fail("bad --secs"));
        } else if let Some(v) = arg.strip_prefix("--rate=") {
            rate = v.parse().unwrap_or_else(|_| fail("bad --rate"));
        } else if let Some(v) = arg.strip_prefix("--attack=") {
            attack = v.to_string();
        } else if let Some(v) = arg.strip_prefix("--sla-ms=") {
            sla_ms = v.parse().unwrap_or_else(|_| fail("bad --sla-ms"));
        } else if let Some(v) = arg.strip_prefix("--prom=") {
            prom_path = Some(v.to_string());
        } else if arg == "--assert-clean" {
            assert_clean = true;
        } else if let Some(v) = arg.strip_prefix("--assert-alarm=") {
            assert_alarm = Some(match v {
                "slow-leader" => AlarmKind::SlowLeader,
                "site-dos" => AlarmKind::SiteDos,
                "partition" => AlarmKind::Partition,
                other => fail(&format!("bad --assert-alarm={other}")),
            });
        } else {
            fail(&format!("unknown argument {arg}"));
        }
    }

    let mut cfg = DeploymentConfig::wide_area(42);
    // `rate` updates/s aggregate: one RTU per 5 updates/s on a 200 ms
    // interval keeps per-RTU traffic realistic at any rate.
    cfg.workload = WorkloadConfig {
        rtus: (rate / 5).max(1) as u32,
        update_interval: Span::millis(200),
        ..Default::default()
    };
    let horizon = Span::secs(secs);
    let onset = Span::secs(secs / 3);
    let scenario = match attack.as_str() {
        "none" => None,
        "slow-leader" => Some(Scenario {
            name: "smoke: slow leader".into(),
            attacks: vec![Attack::Compromise {
                id: 0,
                behavior: ByzBehavior::LeaderDelay(Span::millis(800)),
                at: Time::ZERO + onset,
            }],
            duration: horizon,
        }),
        "site-dos" => Some(Scenario {
            name: "smoke: site DoS".into(),
            attacks: vec![Attack::DosSite {
                site: 0,
                from: Time::ZERO + onset,
                until: Time::ZERO + horizon,
                loss: 0.6,
            }],
            duration: horizon,
        }),
        other => fail(&format!("bad --attack={other}")),
    };

    let health_cfg = HealthConfig {
        sla_ms,
        ..HealthConfig::default()
    };
    let mut system = Deployment::build(cfg);
    if let Some(s) = &scenario {
        s.apply(&mut system);
    }
    let (mon, report): (HealthMonitor, spire::Report) = match substrate {
        Substrate::Sim => {
            let monitor = system.install_health_monitor(health_cfg, Time::ZERO + horizon);
            system.run_for(horizon);
            let report = system.report();
            if let Some(path) = &prom_path {
                std::fs::write(path, prometheus_text(system.world.metrics()))
                    .unwrap_or_else(|e| fail(&format!("writing {path}: {e}")));
            }
            let mon = monitor.lock().unwrap().clone();
            (mon, report)
        }
        Substrate::Rt { threads } => {
            let opts = HealthOptions {
                config: health_cfg,
                watch: false,
                prom_path: prom_path.clone(),
            };
            let outcome = system.into_rt(threads).run_monitored(horizon, opts);
            let mon = outcome
                .health
                .unwrap_or_else(|| fail("rt run returned no monitor"));
            (mon, outcome.report)
        }
    };

    println!("{}", report.one_line());
    println!("{}", report.health_line());
    println!(
        "health-smoke: windows={} breaches={} alarms={:?} verdict={}",
        mon.slo.windows,
        mon.slo.breaches(),
        mon.detector.alarms,
        mon.verdict()
    );

    if let Some(path) = &prom_path {
        let text =
            std::fs::read_to_string(path).unwrap_or_else(|e| fail(&format!("reading {path}: {e}")));
        let samples = parse_prometheus(&text)
            .unwrap_or_else(|e| fail(&format!("export does not parse: {e}")));
        if !samples.iter().any(|s| s.name == "spire_health_snapshots") {
            fail("export is missing spire_health_snapshots");
        }
        println!(
            "prometheus export: {} samples parsed from {path}",
            samples.len()
        );
    }

    if mon.slo.windows == 0 {
        fail("monitor never graded a window");
    }
    if assert_clean {
        if !mon.detector.quiet() {
            fail(&format!(
                "expected a quiet run, got alarms {:?}",
                mon.detector.alarms
            ));
        }
        if mon.slo.breaches() > 0 {
            fail(&format!(
                "expected zero SLO breaches, got lat={} del={} sil={}",
                mon.slo.latency_breaches, mon.slo.delivery_breaches, mon.slo.silence_breaches
            ));
        }
    }
    if let Some(kind) = assert_alarm {
        match mon.detector.first_alarm(kind) {
            Some(at) => println!("asserted alarm {kind:?} first fired at {at}"),
            None => fail(&format!("expected {kind:?} alarm, none fired")),
        }
    }
    println!("health-smoke OK");
}
