//! T2: long-running wide-area deployment statistics (the paper's 30-hour
//! test, time-scaled). Scale with SPIRE_T2_SECS (default 1800 simulated s).
fn main() {
    let secs = spire_bench::env_u64("SPIRE_T2_SECS", 1800);
    spire_bench::experiments::t2_longrun(secs);
}
