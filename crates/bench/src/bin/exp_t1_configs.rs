//! T1: resource-requirement table (replicas for f intrusions, k recoveries,
//! optional single-site-loss tolerance).
fn main() {
    spire_bench::experiments::t1_configurations();
}
