//! F6-chaos: the seeded chaos adversary matrix with online invariant
//! checking. Usage: `exp_f6_chaos [duration_secs] [seed seed ...]`
//! (defaults: 60 s over seeds 1..=8). Exits nonzero if any seed ends
//! with an invariant violation, printing the reproducing seed.
fn main() {
    let args: Vec<u64> = std::env::args()
        .skip(1)
        .map(|a| {
            a.parse().unwrap_or_else(|_| {
                eprintln!("usage: exp_f6_chaos [duration_secs] [seed seed ...]");
                std::process::exit(2);
            })
        })
        .collect();
    let duration_s = args.first().copied().unwrap_or(60);
    let seeds: Vec<u64> = if args.len() > 1 {
        args[1..].to_vec()
    } else {
        (1..=8).collect()
    };
    if !spire_bench::experiments::f6_chaos(&seeds, duration_s) {
        std::process::exit(3);
    }
}
