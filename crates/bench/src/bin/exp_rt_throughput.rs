//! RT: sim vs real-clock substrate throughput sweep. SPIRE_RT_SECS scales
//! each load point (simulated seconds on sim, real seconds on rt);
//! SPIRE_RT_JSON overrides the JSON output path.
fn main() {
    let secs = spire_bench::env_u64("SPIRE_RT_SECS", 10);
    let path = std::env::var("SPIRE_RT_JSON").unwrap_or_else(|_| "BENCH_PR8.json".to_string());
    spire_bench::experiments::rt_throughput(secs, Some(&path));
}
