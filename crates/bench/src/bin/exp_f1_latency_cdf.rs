//! F1: update-latency CDF, wide-area vs LAN. SPIRE_F1_SECS scales it.
fn main() {
    let secs = spire_bench::env_u64("SPIRE_F1_SECS", 300);
    spire_bench::experiments::f1_latency_cdf(secs);
}
