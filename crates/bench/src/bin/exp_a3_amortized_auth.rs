//! Perf ablation: Merkle batch signing vs per-message signatures with
//! real ed25519 (signature ops per delivered update).
fn main() {
    let secs = spire_bench::env_u64("SPIRE_A3_SECS", 30);
    spire_bench::experiments::a3_amortized_auth(secs);
}
