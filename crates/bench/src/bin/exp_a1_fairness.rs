//! Ablation: Spines per-source flooding fairness on/off under an attacker.
fn main() {
    let msgs = spire_bench::env_u64("SPIRE_A1_MSGS", 200) as u32;
    spire_bench::experiments::a1_fairness(msgs);
}
