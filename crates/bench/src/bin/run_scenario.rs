//! Operator tool: run one red-team scenario by index and print its report.
//!
//! Usage: `run_scenario [index]`; with no argument, lists the suite.

use spire::attack::Scenario;
use spire::deployment::{Deployment, DeploymentConfig};
use spire_scada::WorkloadConfig;
use spire_sim::Span;

fn main() {
    let suite = Scenario::red_team_suite();
    let arg = std::env::args().nth(1).and_then(|a| a.parse::<usize>().ok());
    let Some(index) = arg else {
        println!("red-team scenario suite:");
        for (i, s) in suite.iter().enumerate() {
            println!("  {i}: {} ({} attacks, {})", s.name, s.attacks.len(), s.duration);
        }
        println!("\nrun one with: run_scenario <index>");
        return;
    };
    let Some(scenario) = suite.get(index) else {
        eprintln!("no scenario {index} (suite has {})", suite.len());
        std::process::exit(1);
    };
    println!("running scenario {index}: {}", scenario.name);
    let mut cfg = DeploymentConfig::wide_area(9000 + index as u64);
    cfg.workload = WorkloadConfig {
        rtus: 6,
        update_interval: Span::millis(500),
        ..Default::default()
    };
    let mut system = Deployment::build(cfg);
    scenario.apply(&mut system);
    system.run_for(scenario.duration + Span::secs(5));
    let report = system.report();
    println!("{}", report.one_line());
    println!("silent seconds: {}", report.silent_seconds());
    println!(
        "commands: {} issued / {} actuated; recoveries {:?}",
        report.commands_issued, report.commands_actuated, report.recoveries
    );
}
