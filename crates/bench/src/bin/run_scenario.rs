//! Operator tool: run one red-team scenario by index and print its report.
//!
//! Usage: `run_scenario [index] [--substrate=sim|rt|rt:N] [--json[=PATH]] [--trace=PATH]`
//!
//! * no argument — lists the suite;
//! * `--substrate=` — host the system on the deterministic simulator
//!   (default) or the real-clock multi-threaded runtime (`rt`, or `rt:N`
//!   to pin the worker count). The rt substrate runs in wall-clock time;
//!   attack schedules are a simulator control-plane feature and are
//!   discarded there, so scenarios with attacks are rejected on rt;
//! * `--json` — serializes the full [`spire::Report`] (including the
//!   per-phase latency breakdown) as JSON to stdout, or to `PATH` with
//!   `--json=PATH`;
//! * `--trace=PATH` — enables structured tracing and writes a Chrome
//!   `trace_event` file loadable in `chrome://tracing` / Perfetto
//!   (sim substrate only).

use spire::attack::Scenario;
use spire::deployment::{Deployment, DeploymentConfig, Substrate};
use spire_scada::WorkloadConfig;
use spire_sim::Span;

fn main() {
    let suite = Scenario::red_team_suite();
    let mut index: Option<usize> = None;
    // `Some(None)` = JSON to stdout, `Some(Some(path))` = JSON to a file.
    let mut json: Option<Option<String>> = None;
    let mut trace_path: Option<String> = None;
    let mut substrate = Substrate::Sim;
    for arg in std::env::args().skip(1) {
        if arg == "--json" {
            json = Some(None);
        } else if let Some(path) = arg.strip_prefix("--json=") {
            if path.is_empty() {
                eprintln!("--json= requires a path");
                std::process::exit(2);
            }
            json = Some(Some(path.to_string()));
        } else if let Some(path) = arg.strip_prefix("--trace=") {
            if path.is_empty() {
                eprintln!("--trace= requires a path");
                std::process::exit(2);
            }
            trace_path = Some(path.to_string());
        } else if let Some(which) = arg.strip_prefix("--substrate=") {
            let Some(parsed) = Substrate::parse(which) else {
                eprintln!("bad substrate {which:?}: expected sim, rt or rt:N");
                std::process::exit(2);
            };
            substrate = parsed;
        } else if let Ok(i) = arg.parse::<usize>() {
            index = Some(i);
        } else {
            eprintln!("unknown argument: {arg}");
            eprintln!(
                "usage: run_scenario [index] [--substrate=sim|rt|rt:N] [--json[=PATH]] [--trace=PATH]"
            );
            std::process::exit(2);
        }
    }
    let Some(index) = index else {
        println!("red-team scenario suite:");
        for (i, s) in suite.iter().enumerate() {
            println!(
                "  {i}: {} ({} attacks, {})",
                s.name,
                s.attacks.len(),
                s.duration
            );
        }
        println!(
            "\nrun one with: run_scenario <index> [--substrate=sim|rt|rt:N] [--json[=PATH]] [--trace=PATH]"
        );
        return;
    };
    let Some(scenario) = suite.get(index) else {
        eprintln!("no scenario {index} (suite has {})", suite.len());
        std::process::exit(1);
    };
    let quiet = matches!(json, Some(None));
    if !quiet {
        println!("running scenario {index}: {} on {substrate}", scenario.name);
    }
    let mut cfg = DeploymentConfig::wide_area(9000 + index as u64);
    cfg.workload = WorkloadConfig {
        rtus: 6,
        update_interval: Span::millis(500),
        ..Default::default()
    };
    if trace_path.is_some() {
        cfg.trace = true;
    }
    let duration = scenario.duration + Span::secs(5);
    let report = match substrate {
        Substrate::Sim => {
            let mut system = Deployment::build(cfg);
            scenario.apply(&mut system);
            system.run_for(duration);
            let report = system.report();
            if let Some(path) = &trace_path {
                match system.export_chrome_trace(path) {
                    Ok(()) => {
                        if !quiet {
                            println!("chrome trace written to {path}");
                        }
                    }
                    Err(e) => eprintln!("failed to write trace to {path}: {e}"),
                }
            }
            report
        }
        Substrate::Rt { threads } => {
            if !scenario.attacks.is_empty() {
                eprintln!(
                    "scenario {index} ({}) schedules attacks; the attack control \
                     plane is a simulator feature — run it with --substrate=sim",
                    scenario.name
                );
                std::process::exit(2);
            }
            if trace_path.is_some() {
                eprintln!("--trace is not available on the rt substrate");
                std::process::exit(2);
            }
            if !quiet {
                println!("(real-clock run: this takes {duration} of wall time)");
            }
            let outcome = Deployment::build(cfg).into_rt(threads).run_for(duration);
            if !quiet {
                println!(
                    "rt: {} worker thread(s), {} frames delivered, {} dropped by the link model",
                    outcome.run.threads,
                    outcome.run.metrics.counter("rt.delivered"),
                    outcome.run.metrics.counter("rt.loss_drop"),
                );
            }
            outcome.report
        }
    };
    match json {
        Some(Some(path)) => {
            if let Err(e) = std::fs::write(&path, report.to_json()) {
                eprintln!("failed to write report to {path}: {e}");
                std::process::exit(1);
            }
            println!("report written to {path}");
        }
        Some(None) => println!("{}", report.to_json()),
        None => {
            println!("{}", report.one_line());
            println!("silent seconds: {}", report.silent_seconds());
            println!(
                "commands: {} issued / {} actuated; recoveries {:?}",
                report.commands_issued, report.commands_actuated, report.recoveries
            );
            let table = report.phase_table();
            if !table.is_empty() {
                println!("\nper-phase latency breakdown:\n{table}");
            }
        }
    }
}
