//! Operator tool: run one red-team scenario (by index or name) or a
//! seeded chaos run, on either substrate, and print its report.
//!
//! Usage:
//!   `run_scenario [index] [--scenario=NAME] [--chaos=SEED] [--list]`
//!   `             [--duration=SECS] [--substrate=sim|rt|rt:N]`
//!   `             [--recovery-period=SECS] [--recovery-concurrent=K]`
//!   `             [--shards=N] [--cross-shard-rate=R]`
//!   `             [--json[=PATH]] [--trace=PATH] [--watch] [--prom=PATH]`
//!
//! * `--list` (or no selector) — lists the red-team suite;
//! * `index` / `--scenario=NAME` — picks a suite entry by index or by
//!   (case-insensitive substring) name;
//! * `--chaos=SEED` — instead of a suite entry, generates the seeded
//!   chaos plan (reproducible: same seed, same plan) and runs it;
//! * `--duration=SECS` — chaos plan horizon (default 60 s);
//! * `--substrate=` — host the system on the deterministic simulator
//!   (default) or the real-clock multi-threaded runtime (`rt`, or `rt:N`
//!   to pin the worker count). Attack schedules are recorded as a
//!   substrate-agnostic control plan, so scenarios run unchanged on
//!   either substrate (rt runs take the scenario duration in wall time);
//! * `--json` — serializes the full [`spire::Report`] (including the
//!   per-phase latency breakdown, the chaos counters, the `health`
//!   section and `substrate`/`cores`/`threads`/`git_rev` provenance) as
//!   JSON to stdout, or to `PATH` with `--json=PATH`;
//! * `--trace=PATH` — enables structured tracing and writes a Chrome
//!   `trace_event` file loadable in `chrome://tracing` / Perfetto
//!   (sim substrate only);
//! * `--watch` — live one-line health status (rate / p99 / SLO breaches /
//!   detector verdict) to stderr every snapshot interval (rt only: the
//!   simulator outruns wall time, so there is nothing live to watch);
//! * `--prom=PATH` — periodically rewrite a Prometheus text-exposition
//!   snapshot of the live metrics to `PATH` (final metrics at exit; on
//!   sim the export is written once, after the run);
//! * `--shards=N` — instead of a suite entry, run an N-group sharded
//!   deployment (the RTU fleet partitioned across N independent Prime
//!   groups plus the cross-shard 2PC coordinator) for `--duration`
//!   seconds on the chosen substrate; the report gains per-shard and
//!   `xshard` sections;
//! * `--cross-shard-rate=R` — with `--shards`, make a fraction `R`
//!   (0..1) of supervisory commands span two groups (default 0.1);
//! * `--recovery-period=SECS` — overlay a rolling proactive-recovery
//!   rotation on the scenario: every `SECS` the next replica(s)
//!   round-robin restart with a clean state machine and re-join via
//!   chunked, retried state transfer. Each restart is announced as a
//!   recovery window, so the health monitor grades it `degraded` and the
//!   invariant checker reports `recovery-stalled` if the replica misses
//!   its catch-up deadline;
//! * `--recovery-concurrent=K` — replicas restarted per rotation round
//!   (default 1; clamped to the layout's `k`).
//!
//! The online invariant checker and the live health monitor run during
//! every scenario; if the checker finds a safety violation the tool
//! prints the reproducing seed and exits nonzero.

use spire::attack::Scenario;
use spire::chaos::ChaosPlan;
use spire::deployment::{
    Deployment, DeploymentConfig, HealthOptions, RollingRecoveryConfig, Substrate,
};
use spire::health::{prometheus_text, HealthConfig};
use spire::report::{Provenance, Report};
use spire::sharded::{ShardedConfig, ShardedDeployment};
use spire_scada::WorkloadConfig;
use spire_sim::{Span, Time};

/// Runs an N-group sharded deployment and returns (report, threads used).
fn run_sharded(
    shards: u32,
    cross_rate: f64,
    seed: u64,
    duration: Span,
    substrate: Substrate,
    quiet: bool,
) -> (Report, usize) {
    let mut cfg = ShardedConfig::wide_area(shards, seed);
    cfg.base.workload = WorkloadConfig {
        rtus: 6 * shards,
        update_interval: Span::millis(500),
        ..Default::default()
    };
    cfg.cross_rate = cross_rate;
    if !quiet {
        println!(
            "running sharded deployment: {shards} group(s), {} RTUs, {:.0}% cross-shard, \
             on {substrate}",
            cfg.base.workload.rtus,
            cross_rate * 100.0
        );
    }
    let mut system = ShardedDeployment::build(cfg);
    system.install_invariant_checker(Span::secs(1), Time::ZERO + duration);
    match substrate {
        Substrate::Sim => {
            system.run_for(duration);
            (system.report(), 0)
        }
        Substrate::Rt { threads } => {
            if !quiet {
                println!("(real-clock run: this takes {duration} of wall time)");
            }
            let outcome = system.into_rt(threads).run_for(duration);
            (outcome.report, outcome.run.threads)
        }
    }
}

fn list_suite(suite: &[Scenario]) {
    println!("red-team scenario suite:");
    for (i, s) in suite.iter().enumerate() {
        println!(
            "  {i}: {} ({} attacks, {})",
            s.name,
            s.attacks.len(),
            s.duration
        );
    }
    println!(
        "\nrun one with: run_scenario <index|--scenario=NAME> [--substrate=sim|rt|rt:N] \
         [--json[=PATH]] [--trace=PATH]\n\
         or a seeded chaos run: run_scenario --chaos=SEED [--duration=SECS]"
    );
}

fn main() {
    let suite = Scenario::red_team_suite();
    let mut index: Option<usize> = None;
    let mut by_name: Option<String> = None;
    let mut chaos_seed: Option<u64> = None;
    let mut duration_s: u64 = 60;
    let mut list = false;
    // `Some(None)` = JSON to stdout, `Some(Some(path))` = JSON to a file.
    let mut json: Option<Option<String>> = None;
    let mut trace_path: Option<String> = None;
    let mut substrate = Substrate::Sim;
    let mut watch = false;
    let mut prom_path: Option<String> = None;
    let mut shards: Option<u32> = None;
    let mut cross_rate: f64 = 0.1;
    let mut recovery_period: Option<u64> = None;
    let mut recovery_concurrent: u32 = 1;
    for arg in std::env::args().skip(1) {
        if arg == "--json" {
            json = Some(None);
        } else if arg == "--list" {
            list = true;
        } else if arg == "--watch" {
            watch = true;
        } else if let Some(path) = arg.strip_prefix("--prom=") {
            if path.is_empty() {
                eprintln!("--prom= requires a path");
                std::process::exit(2);
            }
            prom_path = Some(path.to_string());
        } else if let Some(path) = arg.strip_prefix("--json=") {
            if path.is_empty() {
                eprintln!("--json= requires a path");
                std::process::exit(2);
            }
            json = Some(Some(path.to_string()));
        } else if let Some(path) = arg.strip_prefix("--trace=") {
            if path.is_empty() {
                eprintln!("--trace= requires a path");
                std::process::exit(2);
            }
            trace_path = Some(path.to_string());
        } else if let Some(name) = arg.strip_prefix("--scenario=") {
            by_name = Some(name.to_string());
        } else if let Some(seed) = arg.strip_prefix("--chaos=") {
            let Ok(seed) = seed.parse::<u64>() else {
                eprintln!("bad chaos seed {seed:?}: expected an unsigned integer");
                std::process::exit(2);
            };
            chaos_seed = Some(seed);
        } else if let Some(secs) = arg.strip_prefix("--duration=") {
            let Ok(secs) = secs.parse::<u64>() else {
                eprintln!("bad duration {secs:?}: expected seconds");
                std::process::exit(2);
            };
            duration_s = secs;
        } else if let Some(n) = arg.strip_prefix("--shards=") {
            let Ok(n) = n.parse::<u32>() else {
                eprintln!("bad shard count {n:?}: expected an unsigned integer");
                std::process::exit(2);
            };
            if n == 0 {
                eprintln!("--shards needs at least 1 group");
                std::process::exit(2);
            }
            shards = Some(n);
        } else if let Some(r) = arg.strip_prefix("--cross-shard-rate=") {
            let Ok(r) = r.parse::<f64>() else {
                eprintln!("bad cross-shard rate {r:?}: expected a fraction in 0..1");
                std::process::exit(2);
            };
            if !(0.0..1.0).contains(&r) {
                eprintln!("cross-shard rate {r} out of range [0, 1)");
                std::process::exit(2);
            }
            cross_rate = r;
        } else if let Some(secs) = arg.strip_prefix("--recovery-period=") {
            let Ok(secs) = secs.parse::<u64>() else {
                eprintln!("bad recovery period {secs:?}: expected seconds");
                std::process::exit(2);
            };
            if secs == 0 {
                eprintln!("--recovery-period needs at least 1 second");
                std::process::exit(2);
            }
            recovery_period = Some(secs);
        } else if let Some(k) = arg.strip_prefix("--recovery-concurrent=") {
            let Ok(k) = k.parse::<u32>() else {
                eprintln!("bad recovery concurrency {k:?}: expected an unsigned integer");
                std::process::exit(2);
            };
            if k == 0 {
                eprintln!("--recovery-concurrent needs at least 1 replica");
                std::process::exit(2);
            }
            recovery_concurrent = k;
        } else if let Some(which) = arg.strip_prefix("--substrate=") {
            let Some(parsed) = Substrate::parse(which) else {
                eprintln!("bad substrate {which:?}: expected sim, rt or rt:N");
                std::process::exit(2);
            };
            substrate = parsed;
        } else if let Ok(i) = arg.parse::<usize>() {
            index = Some(i);
        } else {
            eprintln!("unknown argument: {arg}");
            eprintln!(
                "usage: run_scenario [index] [--scenario=NAME] [--chaos=SEED] [--list] \
                 [--duration=SECS] [--substrate=sim|rt|rt:N] [--shards=N] \
                 [--cross-shard-rate=R] [--recovery-period=SECS] \
                 [--recovery-concurrent=K] [--json[=PATH]] [--trace=PATH] \
                 [--watch] [--prom=PATH]"
            );
            std::process::exit(2);
        }
    }
    if list {
        list_suite(&suite);
        return;
    }
    if let Some(name) = &by_name {
        let needle = name.to_lowercase();
        let matches: Vec<usize> = suite
            .iter()
            .enumerate()
            .filter(|(_, s)| s.name.to_lowercase().contains(&needle))
            .map(|(i, _)| i)
            .collect();
        match matches.as_slice() {
            [i] => index = Some(*i),
            [] => {
                eprintln!("no scenario matches {name:?}; use --list to see the suite");
                std::process::exit(1);
            }
            many => {
                eprintln!("{name:?} is ambiguous; it matches:");
                for i in many {
                    eprintln!("  {i}: {}", suite[*i].name);
                }
                std::process::exit(1);
            }
        }
    }
    let seed = chaos_seed.unwrap_or(9000 + index.unwrap_or(0) as u64);
    // JSON-to-stdout runs must emit nothing but the report object.
    let quiet = matches!(json, Some(None));
    if let Some(n) = shards {
        if index.is_some() || by_name.is_some() || chaos_seed.is_some() {
            eprintln!("--shards runs its own workload; drop the scenario/chaos selector");
            std::process::exit(2);
        }
        if trace_path.is_some() || watch || prom_path.is_some() {
            eprintln!("--trace/--watch/--prom are not available with --shards");
            std::process::exit(2);
        }
        if recovery_period.is_some() {
            eprintln!("--recovery-period is not available with --shards");
            std::process::exit(2);
        }
        let (report, threads_used) = run_sharded(
            n,
            cross_rate,
            seed,
            Span::secs(duration_s),
            substrate,
            quiet,
        );
        finish(&report, substrate, threads_used, &json, seed);
    }
    let scenario = match (chaos_seed, index) {
        (Some(seed), _) => {
            let cfg = DeploymentConfig::wide_area(seed);
            let plan = ChaosPlan::generate(seed, &cfg.spire, Span::secs(duration_s));
            if !quiet {
                println!("chaos plan for seed {seed} ({} events):", plan.log.len());
                for line in &plan.log {
                    println!("  {line}");
                }
            }
            plan.scenario()
        }
        (None, Some(i)) => {
            let Some(scenario) = suite.get(i) else {
                eprintln!("no scenario {i} (suite has {})", suite.len());
                std::process::exit(1);
            };
            scenario.clone()
        }
        (None, None) => {
            list_suite(&suite);
            return;
        }
    };
    if !quiet {
        println!("running scenario: {} on {substrate}", scenario.name);
    }
    let mut cfg = DeploymentConfig::wide_area(seed);
    cfg.workload = WorkloadConfig {
        rtus: 6,
        update_interval: Span::millis(500),
        ..Default::default()
    };
    if trace_path.is_some() {
        cfg.trace = true;
    }
    let duration = scenario.duration + Span::secs(5);
    let mut threads_used = 0usize;
    // Rolling recovery must be announced before `scenario.apply` installs
    // the invariant checker, so the catch-up deadline and the health
    // monitor both see the windows.
    let schedule_recovery = |system: &mut Deployment, quiet: bool| {
        let Some(secs) = recovery_period else {
            return;
        };
        let rcfg = RollingRecoveryConfig {
            period: Span::secs(secs),
            concurrent: recovery_concurrent,
            ..RollingRecoveryConfig::default()
        };
        let windows =
            system.schedule_rolling_recovery(Time(rcfg.period.0), Time(scenario.duration.0), rcfg);
        if !quiet {
            println!(
                "rolling recovery: {} window(s) announced (period {}s, {} concurrent)",
                windows.len(),
                secs,
                recovery_concurrent
            );
        }
    };
    let report = match substrate {
        Substrate::Sim => {
            if watch && !quiet {
                eprintln!(
                    "--watch is live-only and the simulator outruns wall time; \
                     the health monitor still runs (see the health line / report)"
                );
            }
            let mut system = Deployment::build(cfg);
            schedule_recovery(&mut system, quiet);
            scenario.apply(&mut system);
            system.install_health_monitor(HealthConfig::default(), Time::ZERO + duration);
            system.run_for(duration);
            let report = system.report();
            if let Some(path) = &trace_path {
                match system.export_chrome_trace(path) {
                    Ok(()) => {
                        if !quiet {
                            println!("chrome trace written to {path}");
                        }
                    }
                    Err(e) => eprintln!("failed to write trace to {path}: {e}"),
                }
            }
            if let Some(path) = &prom_path {
                if let Err(e) = std::fs::write(path, prometheus_text(system.world.metrics())) {
                    eprintln!("failed to write Prometheus export to {path}: {e}");
                    std::process::exit(1);
                }
                if !quiet {
                    println!("prometheus export written to {path}");
                }
            }
            report
        }
        Substrate::Rt { threads } => {
            if trace_path.is_some() {
                eprintln!("--trace is not available on the rt substrate");
                std::process::exit(2);
            }
            if !quiet {
                println!("(real-clock run: this takes {duration} of wall time)");
            }
            let mut system = Deployment::build(cfg);
            schedule_recovery(&mut system, quiet);
            scenario.apply(&mut system);
            let opts = HealthOptions {
                config: HealthConfig::default(),
                watch,
                prom_path: prom_path.clone(),
            };
            let outcome = system.into_rt(threads).run_monitored(duration, opts);
            threads_used = outcome.run.threads;
            if !quiet {
                println!(
                    "rt: {} worker thread(s), {} frames delivered, {} dropped by the link model",
                    outcome.run.threads,
                    outcome.run.metrics.counter("rt.delivered"),
                    outcome.run.metrics.counter("rt.loss_drop"),
                );
                if let Some(path) = &prom_path {
                    println!("prometheus export written to {path}");
                }
            }
            outcome.report
        }
    };
    finish(&report, substrate, threads_used, &json, seed);
}

/// Emits the report (text or JSON) and exits: 0 on success, 3 on any
/// safety/invariant violation.
fn finish(
    report: &Report,
    substrate: Substrate,
    threads_used: usize,
    json: &Option<Option<String>>,
    seed: u64,
) -> ! {
    let provenance = Provenance::of(&substrate.to_string(), threads_used, spire_bench::git_rev());
    match json {
        Some(Some(path)) => {
            if let Err(e) = std::fs::write(path, report.to_json_with(&provenance)) {
                eprintln!("failed to write report to {path}: {e}");
                std::process::exit(1);
            }
            println!("report written to {path}");
        }
        Some(None) => println!("{}", report.to_json_with(&provenance)),
        None => {
            println!("{}", report.one_line());
            println!("{}", report.health_line());
            println!("silent seconds: {}", report.silent_seconds());
            println!(
                "commands: {} issued / {} actuated; recoveries {:?}",
                report.commands_issued, report.commands_actuated, report.recoveries
            );
            if report.recovery.started > 0 {
                println!(
                    "recovery: {}/{} completed, {} chunks reconstructed ({} retry rounds), \
                     duration p50={:.0}ms p99={:.0}ms; compaction: {} runs, {} entries evicted",
                    report.recovery.completed,
                    report.recovery.started,
                    report.recovery.chunks,
                    report.recovery.chunk_retries,
                    report.recovery.duration_p50_ms,
                    report.recovery.duration_p99_ms,
                    report.recovery.compaction_runs,
                    report.recovery.compaction_evicted,
                );
            }
            println!(
                "chaos: {} invariant checks, {} violations, {} corrupted / {} duplicated frames, \
                 {} decode failures",
                report.chaos.invariant_checks,
                report.chaos.invariant_violations,
                report.chaos.corrupted_frames,
                report.chaos.duplicated_frames,
                report.chaos.decode_failures,
            );
            for s in &report.shards {
                println!(
                    "shard {}: {}/{} confirmed, p50={:.1}ms p99={:.1}ms",
                    s.shard, s.confirmed, s.sent, s.p50_ms, s.p99_ms
                );
            }
            if report.xshard.commands > 0 {
                println!(
                    "cross-shard: {} commands, {} committed / {} aborted ({} retries), \
                     commit p50={:.1}ms p99={:.1}ms",
                    report.xshard.commands,
                    report.xshard.committed,
                    report.xshard.aborted,
                    report.xshard.retries,
                    report.xshard.commit_p50_ms,
                    report.xshard.commit_p99_ms,
                );
            }
            let table = report.phase_table();
            if !table.is_empty() {
                println!("\nper-phase latency breakdown:\n{table}");
            }
        }
    }
    if !report.safety_ok || report.chaos.invariant_violations > 0 {
        eprintln!(
            "SAFETY FAILURE: {} invariant violation(s); reproduce with seed {seed} \
             on --substrate=sim",
            report.chaos.invariant_violations
        );
        std::process::exit(3);
    }
    std::process::exit(0);
}
