//! F2: latency timeline across proactive recoveries. SPIRE_F2_SECS scales.
fn main() {
    let secs = spire_bench::env_u64("SPIRE_F2_SECS", 180);
    spire_bench::experiments::f2_recovery_timeline(secs, 30);
}
