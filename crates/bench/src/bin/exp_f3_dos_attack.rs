//! F3: DoS + disconnection of the primary control center, Spire vs the
//! single-CC baseline. SPIRE_F3_SECS scales.
fn main() {
    let secs = spire_bench::env_u64("SPIRE_F3_SECS", 120);
    spire_bench::experiments::f3_network_attack(secs);
}
